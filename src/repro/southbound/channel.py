"""The control channel between a switch and its controller.

Messages are *actually serialised* at the sending endpoint and reparsed at
the receiving one, so codec bugs surface in integration tests and the
byte counts reported for benchmark E9 are real.  The channel models
propagation latency, optional serialisation bandwidth, and in-order
delivery (ZOF, like OpenFlow, assumes a TCP-like transport).

Failure semantics (see PROTOCOL.md §9): each ``connect()`` starts a new
*connection epoch*.  Deliveries are stamped with the epoch they were sent
in and dropped on arrival if the channel has since disconnected — even if
it reconnected in the meantime — so "in-flight messages are lost" holds
across arbitrarily fast flaps.  Pending xid-correlated requests are
failed explicitly on disconnect, and :meth:`ChannelEndpoint.request`
supports timeout/retry with exponential backoff for callers that must
survive a lossy control plane.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional

from repro.errors import ChannelClosedError
from repro.sim import Simulator
from repro.southbound.messages import (
    Error,
    Message,
    REPLY_TYPES,
    decode_message,
    encode_message,
)

__all__ = ["ControlChannel", "ChannelEndpoint", "ChannelStats"]


class ChannelStats:
    """Per-direction message and byte counters, broken down by type."""

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.by_type: Dict[str, int] = defaultdict(int)
        self.bytes_by_type: Dict[str, int] = defaultdict(int)

    def reset(self) -> None:
        """Zero all counters (measurement windows)."""
        self.__init__()

    def record(self, msg: Message, size: int) -> None:
        name = type(msg).__name__
        self.messages += 1
        self.bytes += size
        self.by_type[name] += 1
        self.bytes_by_type[name] += size

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_type": dict(self.by_type),
        }

    def __repr__(self) -> str:
        return f"<ChannelStats {self.messages} msgs, {self.bytes} B>"


class _PendingRequest:
    """Book-keeping for one outstanding xid-correlated request."""

    __slots__ = ("msg", "callback", "on_failure", "timeout", "retries_left",
                 "backoff", "timer")

    def __init__(self, msg: Message, callback: Callable[[Message], None],
                 on_failure: Optional[Callable[[Message], None]],
                 timeout: float, retries: int, backoff: float) -> None:
        self.msg = msg
        self.callback = callback
        self.on_failure = on_failure
        self.timeout = timeout
        self.retries_left = retries
        self.backoff = backoff
        self.timer = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class ChannelEndpoint:
    """One side of a control channel.

    ``handler`` receives every inbound message.  :meth:`request` provides
    xid-correlated request/reply: the callback fires instead of the
    handler when the reply arrives.  Requests can opt into a timeout with
    exponential-backoff retries; requests outstanding at disconnect are
    failed explicitly (never silently dropped) so callers can retry.
    """

    def __init__(self, channel: "ControlChannel", name: str) -> None:
        self._channel = channel
        self.name = name
        self.handler: Optional[Callable[[Message], None]] = None
        self.on_connect: Optional[Callable[[], None]] = None
        self.on_disconnect: Optional[Callable[[], None]] = None
        self.sent = ChannelStats()
        self.received = ChannelStats()
        self._next_xid = 1
        self._pending: Dict[int, _PendingRequest] = {}
        #: Requests failed (disconnect or retries exhausted) and resends.
        self.requests_failed = 0
        self.request_retries = 0
        self.peer: "ChannelEndpoint" = None  # set by the channel
        # Telemetry children; bound by ControlChannel when enabled.
        self._m_msgs = None
        self._m_bytes = None

    def send(self, msg: Message) -> int:
        """Transmit ``msg``; assigns an xid when the caller left it 0."""
        if not self._channel.connected:
            raise ChannelClosedError(
                f"{self.name}: channel is down, cannot send "
                f"{type(msg).__name__}"
            )
        if msg.xid == 0:
            msg.xid = self._next_xid
            self._next_xid += 1
        wire = encode_message(msg)
        self.sent.record(msg, len(wire))
        if self._m_msgs is not None:
            self._m_msgs.inc()
            self._m_bytes.inc(len(wire))
        self._channel._deliver(self, wire)
        return msg.xid

    def request(
        self,
        msg: Message,
        callback: Callable[[Message], None],
        timeout: float = 0.0,
        retries: int = 0,
        backoff: float = 2.0,
        on_failure: Optional[Callable[[Message], None]] = None,
    ) -> int:
        """Send ``msg`` and route the same-xid reply to ``callback``.

        With ``timeout > 0`` the request is resent up to ``retries``
        times, each wait ``backoff`` times longer than the last.  When
        the retries are exhausted, or the channel disconnects while the
        request is outstanding, ``on_failure`` receives a synthetic
        :class:`Error` (``TIMEOUT`` or ``CHANNEL_DOWN``); without an
        ``on_failure``, ``callback`` receives that Error instead, so a
        request is never silently dropped either way.
        """
        xid = self.send(msg)
        pending = _PendingRequest(msg, callback, on_failure,
                                  timeout, retries, backoff)
        self._pending[xid] = pending
        if timeout > 0:
            pending.timer = self._channel.sim.schedule(
                timeout, self._on_request_timeout, xid
            )
        return xid

    def _on_request_timeout(self, xid: int) -> None:
        pending = self._pending.get(xid)
        if pending is None:
            return
        pending.timer = None
        if pending.retries_left > 0 and self._channel.connected:
            pending.retries_left -= 1
            pending.timeout *= pending.backoff
            self.request_retries += 1
            self._channel._count_retry()
            self.send(pending.msg)  # same xid: the reply resolves us
            pending.timer = self._channel.sim.schedule(
                pending.timeout, self._on_request_timeout, xid
            )
            return
        del self._pending[xid]
        self._fail_request(pending, Error.TIMEOUT,
                           f"no reply to {type(pending.msg).__name__} "
                           f"xid={xid}")

    def _fail_request(self, pending: _PendingRequest, code: int,
                      detail: str) -> None:
        pending.cancel_timer()
        self.requests_failed += 1
        self._channel._count_request_failure()
        err = Error(code, detail)
        err.xid = pending.msg.xid
        if pending.on_failure is not None:
            pending.on_failure(err)
        else:
            pending.callback(err)

    def _receive(self, wire: bytes) -> None:
        msg = decode_message(wire)
        self.received.record(msg, len(wire))
        # Only genuine replies take part in xid correlation: both ends
        # assign xids independently, so an async event may coincide with
        # a pending request's xid without being its answer.
        if isinstance(msg, REPLY_TYPES):
            pending = self._pending.pop(msg.xid, None)
            if pending is not None:
                pending.cancel_timer()
                pending.callback(msg)
                return
        if self.handler is not None:
            self.handler(msg)

    def _connection_changed(self, up: bool) -> None:
        if up and self.on_connect is not None:
            self.on_connect()
        if not up:
            # Fail every outstanding request explicitly so callers (the
            # stats poller, handshake logic, barriers) see the loss and
            # can retry after reconnect, instead of waiting forever.
            pending_now, self._pending = self._pending, {}
            for pending in pending_now.values():
                self._fail_request(pending, Error.CHANNEL_DOWN,
                                   "control channel disconnected")
            if self.on_disconnect is not None:
                self.on_disconnect()

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return f"<ChannelEndpoint {self.name}>"


class ControlChannel:
    """A bidirectional, ordered, lossless message pipe with latency.

    Parameters
    ----------
    sim:
        Simulation kernel.
    latency:
        One-way propagation delay in seconds.  This is the dominant term
        in reactive flow setup (benchmark E1) — a controller 5 ms away
        costs every new flow ≥ 2×5 ms.
    bandwidth_bps:
        Serialisation rate; 0 means infinite (latency-only model).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.001,
        bandwidth_bps: float = 0.0,
        telemetry=None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.connected = False
        #: Connection epoch: bumped on every connect().  Deliveries carry
        #: the epoch they were sent in; a mismatched epoch on arrival
        #: means the channel dropped (and possibly reconnected) while the
        #: message was in flight, so it is lost — a TCP connection does
        #: not resurrect its send buffer into the next connection.
        self.epoch = 0
        self.connects = 0
        self.disconnects = 0
        self.messages_dropped = 0
        self.name = name
        self.switch_end = ChannelEndpoint(self, "switch")
        self.controller_end = ChannelEndpoint(self, "controller")
        self.switch_end.peer = self.controller_end
        self.controller_end.peer = self.switch_end
        self._busy_until: Dict[ChannelEndpoint, float] = {
            self.switch_end: 0.0,
            self.controller_end: 0.0,
        }
        self._m_drops = None
        self._m_flaps = None
        self._m_retries = None
        self._m_failures = None
        self._tracer = None
        self._m_stash_pruned = None
        if telemetry is not None and telemetry.enabled:
            if telemetry.tracing:
                self._tracer = telemetry.tracer
                self._m_stash_pruned = telemetry.metrics.counter(
                    "trace_stash_pruned_total",
                    "Stashed trace ids discarded at an epoch change",
                    ("channel",),
                ).labels(name or "channel")
            msgs = telemetry.metrics.counter(
                "channel_messages_total", "Control messages sent",
                ("channel", "direction"),
            )
            nbytes = telemetry.metrics.counter(
                "channel_bytes_total", "Control bytes sent (wire size)",
                ("channel", "direction"),
            )
            label = name or "channel"
            self.switch_end._m_msgs = msgs.labels(label, "to_controller")
            self.switch_end._m_bytes = nbytes.labels(label, "to_controller")
            self.controller_end._m_msgs = msgs.labels(label, "to_switch")
            self.controller_end._m_bytes = nbytes.labels(label, "to_switch")
            self._m_drops = telemetry.metrics.counter(
                "channel_dropped_total",
                "Control messages lost to disconnects (epoch mismatch)",
                ("channel",),
            ).labels(label)
            self._m_flaps = telemetry.metrics.counter(
                "channel_transitions_total",
                "Channel connect/disconnect transitions",
                ("channel", "event"),
            )
            self._m_retries = telemetry.metrics.counter(
                "channel_request_retries_total",
                "xid requests resent after a timeout",
                ("channel",),
            ).labels(label)
            self._m_failures = telemetry.metrics.counter(
                "channel_request_failures_total",
                "xid requests failed (timeout or channel down)",
                ("channel",),
            ).labels(label)

    def _prune_stash(self) -> None:
        """Evict trace ids stashed for frames this epoch change kills.

        Any id stashed under this channel and not yet adopted belongs
        to an in-flight frame that will be dropped on arrival (epoch
        mismatch) — without pruning, those entries leak forever and a
        later byte-identical frame could adopt a stale trace.
        """
        if self._tracer is None:
            return
        pruned = self._tracer.prune_scope(self)
        if pruned and self._m_stash_pruned is not None:
            self._m_stash_pruned.inc(pruned)

    def connect(self) -> None:
        """Bring the channel up and notify both endpoints."""
        if self.connected:
            return
        self.connected = True
        self.epoch += 1
        self.connects += 1
        self._prune_stash()
        if self._m_flaps is not None:
            self._m_flaps.labels(self.name or "channel", "connect").inc()
        self.switch_end._connection_changed(True)
        self.controller_end._connection_changed(True)

    def disconnect(self) -> None:
        """Tear the channel down; in-flight messages are lost."""
        if not self.connected:
            return
        self.connected = False
        self.disconnects += 1
        self._prune_stash()
        if self._m_flaps is not None:
            self._m_flaps.labels(self.name or "channel", "disconnect").inc()
        # A new connection starts with empty socket buffers: the old
        # serialisation backlog must not delay post-reconnect messages.
        self._busy_until[self.switch_end] = 0.0
        self._busy_until[self.controller_end] = 0.0
        self.switch_end._connection_changed(False)
        self.controller_end._connection_changed(False)

    def _deliver(self, sender: ChannelEndpoint, wire: bytes) -> None:
        receiver = sender.peer
        depart = self.sim.now
        if self.bandwidth_bps:
            start = max(depart, self._busy_until[sender])
            depart = start + len(wire) * 8 / self.bandwidth_bps
            self._busy_until[sender] = depart
        arrival_delay = (depart - self.sim.now) + self.latency
        self.sim.schedule(arrival_delay, self._arrive, receiver, wire,
                          self.epoch)

    def _arrive(self, receiver: ChannelEndpoint, wire: bytes,
                epoch: int) -> None:
        # Epoch check, not just `connected`: a message sent before a
        # disconnect must stay lost even if the channel reconnected
        # before the arrival event fired.
        if not self.connected or epoch != self.epoch:
            self.messages_dropped += 1
            if self._m_drops is not None:
                self._m_drops.inc()
            return  # lost in the disconnect
        receiver._receive(wire)

    def _count_retry(self) -> None:
        if self._m_retries is not None:
            self._m_retries.inc()

    def _count_request_failure(self) -> None:
        if self._m_failures is not None:
            self._m_failures.inc()

    def total_stats(self) -> dict:
        """Combined both-direction counters (benchmark E9 reads this)."""
        return {
            "to_controller": self.switch_end.sent.snapshot(),
            "to_switch": self.controller_end.sent.snapshot(),
        }

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<ControlChannel {state} latency={self.latency * 1e3:.2f}ms>"
