"""Low-level binary codecs shared by every ZOF message.

Matches are encoded as OXM-style TLVs; actions as (type, length, body)
frames.  Everything is big-endian.  The codec is deliberately strict:
unknown field or action types raise :class:`ProtocolError` rather than
being skipped, because in a single-administrative-domain southbound
protocol a decoding mismatch is a version-negotiation bug, not tolerable
noise.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.dataplane.actions import (
    Action,
    DecTTL,
    Group,
    Meter,
    Output,
    PopVLAN,
    PushVLAN,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
)
from repro.dataplane.match import VLAN_ABSENT, Match
from repro.errors import ProtocolError
from repro.packet import IPv4Address, IPv4Network, MACAddress

__all__ = [
    "FrameCache",
    "encode_match",
    "decode_match",
    "encode_actions",
    "decode_actions",
]


class FrameCache:
    """Memoises the wire bytes of frames rebuilt identically every
    interval — LLDP probes, echo keepalives, and anything else periodic.

    Callers supply a hashable identity key and a builder; the builder
    runs once and the bytes (plus an optional companion object, e.g. the
    un-encoded packet) are replayed on every later tick.  Encoding a
    probe frame costs header serialisation and checksums per port per
    interval, which at discovery rates on large fabrics is pure waste —
    the frames never change.

    The cache is transparent: it stores what the builder returned, so a
    hit is byte-identical to a rebuild by construction.
    """

    __slots__ = ("_cache", "hits", "misses", "max_entries")

    def __init__(self, max_entries: int = 4096) -> None:
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0
        self.max_entries = max_entries

    def get(self, key, build):
        """The cached value for ``key``, building it on first use."""
        value = self._cache.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = build()
        if len(self._cache) >= self.max_entries:
            self._cache.clear()  # simple bound; periodic sets are small
        self._cache[key] = value
        return value

    def invalidate(self, key=None) -> None:
        """Forget one key, or everything when ``key`` is ``None``."""
        if key is None:
            self._cache.clear()
        else:
            self._cache.pop(key, None)

    def __len__(self) -> int:
        return len(self._cache)


# ----------------------------------------------------------------------
# Match TLVs
# ----------------------------------------------------------------------
_F_IN_PORT = 1
_F_ETH_SRC = 2
_F_ETH_DST = 3
_F_ETH_TYPE = 4
_F_VLAN_VID = 5
_F_IP_SRC = 6
_F_IP_DST = 7
_F_IP_PROTO = 8
_F_IP_DSCP = 9
_F_L4_SRC = 10
_F_L4_DST = 11


def encode_match(match: Match) -> bytes:
    """Serialise a match to TLVs, prefixed with a u16 byte count."""
    body = bytearray()

    def tlv(field_id: int, value: bytes) -> None:
        body.append(field_id)
        body.append(len(value))
        body.extend(value)

    fields = match.fields
    if "in_port" in fields:
        tlv(_F_IN_PORT, struct.pack("!I", fields["in_port"]))
    if "eth_src" in fields:
        tlv(_F_ETH_SRC, fields["eth_src"].packed())
    if "eth_dst" in fields:
        tlv(_F_ETH_DST, fields["eth_dst"].packed())
    if "eth_type" in fields:
        tlv(_F_ETH_TYPE, struct.pack("!H", fields["eth_type"]))
    if "vlan_vid" in fields:
        vid = fields["vlan_vid"]
        raw = 0xFFFF if vid == VLAN_ABSENT else vid
        tlv(_F_VLAN_VID, struct.pack("!H", raw))
    for name, field_id in (("ip_src", _F_IP_SRC), ("ip_dst", _F_IP_DST)):
        if name in fields:
            value = fields[name]
            if isinstance(value, IPv4Network):
                tlv(field_id, value.address.packed()
                    + bytes([value.prefix_len]))
            else:
                tlv(field_id, value.packed() + bytes([32]))
    if "ip_proto" in fields:
        tlv(_F_IP_PROTO, bytes([fields["ip_proto"]]))
    if "ip_dscp" in fields:
        tlv(_F_IP_DSCP, bytes([fields["ip_dscp"]]))
    if "l4_src" in fields:
        tlv(_F_L4_SRC, struct.pack("!H", fields["l4_src"]))
    if "l4_dst" in fields:
        tlv(_F_L4_DST, struct.pack("!H", fields["l4_dst"]))
    return struct.pack("!H", len(body)) + bytes(body)


def decode_match(data: bytes) -> Tuple[Match, int]:
    """Parse a match; returns ``(match, bytes_consumed)``."""
    if len(data) < 2:
        raise ProtocolError("match blob truncated (no length prefix)")
    (body_len,) = struct.unpack_from("!H", data)
    end = 2 + body_len
    if len(data) < end:
        raise ProtocolError("match blob truncated (body short)")
    fields = {}
    offset = 2
    while offset < end:
        if end - offset < 2:
            raise ProtocolError("match TLV header truncated")
        field_id, value_len = data[offset], data[offset + 1]
        offset += 2
        value = data[offset:offset + value_len]
        if len(value) != value_len:
            raise ProtocolError("match TLV value truncated")
        offset += value_len
        if field_id == _F_IN_PORT:
            fields["in_port"] = struct.unpack("!I", value)[0]
        elif field_id == _F_ETH_SRC:
            fields["eth_src"] = MACAddress(value)
        elif field_id == _F_ETH_DST:
            fields["eth_dst"] = MACAddress(value)
        elif field_id == _F_ETH_TYPE:
            fields["eth_type"] = struct.unpack("!H", value)[0]
        elif field_id == _F_VLAN_VID:
            raw = struct.unpack("!H", value)[0]
            fields["vlan_vid"] = VLAN_ABSENT if raw == 0xFFFF else raw
        elif field_id in (_F_IP_SRC, _F_IP_DST):
            addr, prefix_len = IPv4Address(value[:4]), value[4]
            name = "ip_src" if field_id == _F_IP_SRC else "ip_dst"
            if prefix_len == 32:
                fields[name] = addr
            else:
                fields[name] = IPv4Network(str(addr), prefix_len)
        elif field_id == _F_IP_PROTO:
            fields["ip_proto"] = value[0]
        elif field_id == _F_IP_DSCP:
            fields["ip_dscp"] = value[0]
        elif field_id == _F_L4_SRC:
            fields["l4_src"] = struct.unpack("!H", value)[0]
        elif field_id == _F_L4_DST:
            fields["l4_dst"] = struct.unpack("!H", value)[0]
        else:
            raise ProtocolError(f"unknown match field id {field_id}")
    return Match(**fields), end


# ----------------------------------------------------------------------
# Action frames
# ----------------------------------------------------------------------
_A_OUTPUT = 1
_A_SET_ETH_SRC = 2
_A_SET_ETH_DST = 3
_A_SET_IP_SRC = 4
_A_SET_IP_DST = 5
_A_SET_L4_SRC = 6
_A_SET_L4_DST = 7
_A_SET_DSCP = 8
_A_PUSH_VLAN = 9
_A_POP_VLAN = 10
_A_SET_VLAN = 11
_A_DEC_TTL = 12
_A_GROUP = 13
_A_METER = 14


def _encode_one_action(action: Action) -> bytes:
    if isinstance(action, Output):
        return bytes([_A_OUTPUT, 4]) + struct.pack("!I", action.port)
    if isinstance(action, SetEthSrc):
        return bytes([_A_SET_ETH_SRC, 6]) + action.mac.packed()
    if isinstance(action, SetEthDst):
        return bytes([_A_SET_ETH_DST, 6]) + action.mac.packed()
    if isinstance(action, SetIPSrc):
        return bytes([_A_SET_IP_SRC, 4]) + action.ip.packed()
    if isinstance(action, SetIPDst):
        return bytes([_A_SET_IP_DST, 4]) + action.ip.packed()
    if isinstance(action, SetL4Src):
        return bytes([_A_SET_L4_SRC, 2]) + struct.pack("!H", action.port)
    if isinstance(action, SetL4Dst):
        return bytes([_A_SET_L4_DST, 2]) + struct.pack("!H", action.port)
    if isinstance(action, SetDSCP):
        return bytes([_A_SET_DSCP, 1, action.dscp])
    if isinstance(action, PushVLAN):
        return bytes([_A_PUSH_VLAN, 3]) + struct.pack(
            "!HB", action.vid, action.pcp
        )
    if isinstance(action, PopVLAN):
        return bytes([_A_POP_VLAN, 0])
    if isinstance(action, SetVLAN):
        return bytes([_A_SET_VLAN, 2]) + struct.pack("!H", action.vid)
    if isinstance(action, DecTTL):
        return bytes([_A_DEC_TTL, 0])
    if isinstance(action, Group):
        return bytes([_A_GROUP, 4]) + struct.pack("!I", action.group_id)
    if isinstance(action, Meter):
        return bytes([_A_METER, 4]) + struct.pack("!I", action.meter_id)
    raise ProtocolError(f"cannot encode action {action!r}")


def encode_actions(actions: List[Action]) -> bytes:
    """Serialise an action list, prefixed with a u16 byte count."""
    body = b"".join(_encode_one_action(a) for a in actions)
    return struct.pack("!H", len(body)) + body


def decode_actions(data: bytes) -> Tuple[List[Action], int]:
    """Parse an action list; returns ``(actions, bytes_consumed)``."""
    if len(data) < 2:
        raise ProtocolError("action blob truncated (no length prefix)")
    (body_len,) = struct.unpack_from("!H", data)
    end = 2 + body_len
    if len(data) < end:
        raise ProtocolError("action blob truncated (body short)")
    actions: List[Action] = []
    offset = 2
    while offset < end:
        if end - offset < 2:
            raise ProtocolError("action frame header truncated")
        a_type, a_len = data[offset], data[offset + 1]
        offset += 2
        body = data[offset:offset + a_len]
        if len(body) != a_len:
            raise ProtocolError("action frame body truncated")
        offset += a_len
        if a_type == _A_OUTPUT:
            actions.append(Output(struct.unpack("!I", body)[0]))
        elif a_type == _A_SET_ETH_SRC:
            actions.append(SetEthSrc(MACAddress(body)))
        elif a_type == _A_SET_ETH_DST:
            actions.append(SetEthDst(MACAddress(body)))
        elif a_type == _A_SET_IP_SRC:
            actions.append(SetIPSrc(IPv4Address(body)))
        elif a_type == _A_SET_IP_DST:
            actions.append(SetIPDst(IPv4Address(body)))
        elif a_type == _A_SET_L4_SRC:
            actions.append(SetL4Src(struct.unpack("!H", body)[0]))
        elif a_type == _A_SET_L4_DST:
            actions.append(SetL4Dst(struct.unpack("!H", body)[0]))
        elif a_type == _A_SET_DSCP:
            actions.append(SetDSCP(body[0]))
        elif a_type == _A_PUSH_VLAN:
            vid, pcp = struct.unpack("!HB", body)
            actions.append(PushVLAN(vid, pcp))
        elif a_type == _A_POP_VLAN:
            actions.append(PopVLAN())
        elif a_type == _A_SET_VLAN:
            actions.append(SetVLAN(struct.unpack("!H", body)[0]))
        elif a_type == _A_DEC_TTL:
            actions.append(DecTTL())
        elif a_type == _A_GROUP:
            actions.append(Group(struct.unpack("!I", body)[0]))
        elif a_type == _A_METER:
            actions.append(Meter(struct.unpack("!I", body)[0]))
        else:
            raise ProtocolError(f"unknown action type {a_type}")
    return actions, end
