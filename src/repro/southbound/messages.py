"""The ZOF message set — the southbound wire protocol.

ZOF ("Zen OpenFlow") is structurally isomorphic to OpenFlow 1.3's message
set: the same handshake, the same asynchronous event messages, the same
programming verbs.  Every message encodes to a byte-exact frame::

    version(1) | type(1) | length(4) | xid(4) | body(...)

so the control channel genuinely serialises and reparses traffic, and the
overhead numbers in benchmark E9 measure real bytes.
"""

from __future__ import annotations

import struct
from typing import ClassVar, Dict, List, Optional, Tuple, Type

from repro.dataplane.actions import Action
from repro.dataplane.group import Bucket, GroupEntry, GroupType
from repro.dataplane.match import Match
from repro.errors import ProtocolError
from repro.southbound.codec import (
    decode_actions,
    decode_match,
    encode_actions,
    encode_match,
)

__all__ = [
    "ZOF_VERSION",
    "Message",
    "Hello",
    "Error",
    "EchoRequest",
    "EchoReply",
    "FeaturesRequest",
    "FeaturesReply",
    "PortDesc",
    "PacketIn",
    "PacketOut",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "PortStatus",
    "GroupMod",
    "MeterMod",
    "ModCommand",
    "StatsRequest",
    "StatsReply",
    "StatsKind",
    "FlowStatsEntry",
    "BarrierRequest",
    "BarrierReply",
    "RoleRequest",
    "RoleReply",
    "REPLY_TYPES",
    "ControllerRole",
    "encode_message",
    "decode_message",
]

ZOF_VERSION = 1

_HEADER = struct.Struct("!BBII")

_MESSAGE_TYPES: Dict[int, Type["Message"]] = {}


def _register(msg_type: int):
    def decorate(cls: Type["Message"]) -> Type["Message"]:
        cls.TYPE = msg_type
        if msg_type in _MESSAGE_TYPES:
            raise ProtocolError(f"duplicate message type {msg_type}")
        _MESSAGE_TYPES[msg_type] = cls
        return cls

    return decorate


class Message:
    """Base class for all ZOF messages.

    ``xid`` correlates requests and replies; the channel assigns one
    automatically when the sender leaves it as 0.
    """

    TYPE: ClassVar[int] = -1
    xid: int = 0

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, body: bytes) -> "Message":
        if body:
            raise ProtocolError(
                f"{cls.__name__} expects an empty body, got {len(body)}B"
            )
        return cls()

    def fields(self) -> dict:
        return {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        ours, theirs = dict(self.fields()), dict(other.fields())
        ours.pop("xid", None)
        theirs.pop("xid", None)
        return ours == theirs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}={v!r}" for k, v in self.fields().items() if k != "xid"
        )
        return f"{type(self).__name__}({inner})"


def encode_message(msg: Message) -> bytes:
    body = msg.encode_body()
    return _HEADER.pack(
        ZOF_VERSION, msg.TYPE, _HEADER.size + len(body), msg.xid
    ) + body


def decode_message(data: bytes) -> Message:
    if len(data) < _HEADER.size:
        raise ProtocolError("ZOF frame shorter than header")
    version, msg_type, length, xid = _HEADER.unpack_from(data)
    if version != ZOF_VERSION:
        raise ProtocolError(f"unsupported ZOF version {version}")
    if length != len(data):
        raise ProtocolError(
            f"ZOF length field {length} != frame size {len(data)}"
        )
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown ZOF message type {msg_type}")
    try:
        msg = cls.decode_body(data[_HEADER.size:])
    except ProtocolError:
        raise
    except Exception as exc:  # struct errors, index errors, bad enums
        raise ProtocolError(
            f"malformed {cls.__name__} body: {exc}"
        ) from exc
    msg.xid = xid
    return msg


# ----------------------------------------------------------------------
# Connection setup and keepalive
# ----------------------------------------------------------------------
@_register(0)
class Hello(Message):
    """First message in each direction; carries the sender's version."""

    def __init__(self, version: int = ZOF_VERSION) -> None:
        self.version = version

    def encode_body(self) -> bytes:
        return bytes([self.version])

    @classmethod
    def decode_body(cls, body: bytes) -> "Hello":
        if len(body) != 1:
            raise ProtocolError("Hello body must be 1 byte")
        return cls(body[0])


@_register(1)
class Error(Message):
    """Reports a protocol or programming failure to the peer."""

    BAD_REQUEST = 1
    BAD_MATCH = 2
    BAD_ACTION = 3
    TABLE_FULL = 4
    BAD_GROUP = 5
    BAD_METER = 6
    BAD_ROLE = 7
    # Synthetic codes: never sent on the wire, only fabricated locally
    # by ChannelEndpoint to fail a pending request (see channel.py).
    CHANNEL_DOWN = 8
    TIMEOUT = 9

    def __init__(self, code: int = BAD_REQUEST, detail: str = "") -> None:
        self.code = code
        self.detail = detail

    def encode_body(self) -> bytes:
        raw = self.detail.encode()
        return struct.pack("!H", self.code) + raw

    @classmethod
    def decode_body(cls, body: bytes) -> "Error":
        if len(body) < 2:
            raise ProtocolError("Error body truncated")
        (code,) = struct.unpack_from("!H", body)
        return cls(code, body[2:].decode())


@_register(2)
class EchoRequest(Message):
    def __init__(self, data: bytes = b"") -> None:
        self.data = bytes(data)

    def encode_body(self) -> bytes:
        return self.data

    @classmethod
    def decode_body(cls, body: bytes) -> "EchoRequest":
        return cls(body)


@_register(3)
class EchoReply(Message):
    def __init__(self, data: bytes = b"") -> None:
        self.data = bytes(data)

    def encode_body(self) -> bytes:
        return self.data

    @classmethod
    def decode_body(cls, body: bytes) -> "EchoReply":
        return cls(body)


# ----------------------------------------------------------------------
# Feature discovery
# ----------------------------------------------------------------------
class PortDesc:
    """Port metadata carried in FeaturesReply and PortStatus."""

    __slots__ = ("number", "mac_bytes", "up")

    def __init__(self, number: int, mac_bytes: bytes, up: bool) -> None:
        self.number = number
        self.mac_bytes = mac_bytes
        self.up = up

    def encode(self) -> bytes:
        return struct.pack("!I6sB", self.number, self.mac_bytes, int(self.up))

    @classmethod
    def decode(cls, data: bytes) -> Tuple["PortDesc", int]:
        number, mac, up = struct.unpack_from("!I6sB", data)
        return cls(number, mac, bool(up)), 11

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortDesc):
            return NotImplemented
        return (self.number, self.mac_bytes, self.up) == (
            other.number, other.mac_bytes, other.up
        )

    def __repr__(self) -> str:
        return f"PortDesc({self.number}, up={self.up})"


@_register(5)
class FeaturesRequest(Message):
    pass


@_register(6)
class FeaturesReply(Message):
    def __init__(self, dpid: int = 0, num_tables: int = 0,
                 ports: Optional[List[PortDesc]] = None) -> None:
        self.dpid = dpid
        self.num_tables = num_tables
        self.ports = list(ports or [])

    def encode_body(self) -> bytes:
        body = struct.pack("!QBH", self.dpid, self.num_tables,
                           len(self.ports))
        return body + b"".join(p.encode() for p in self.ports)

    @classmethod
    def decode_body(cls, body: bytes) -> "FeaturesReply":
        dpid, num_tables, num_ports = struct.unpack_from("!QBH", body)
        offset = 11
        ports = []
        for _ in range(num_ports):
            desc, used = PortDesc.decode(body[offset:])
            ports.append(desc)
            offset += used
        return cls(dpid, num_tables, ports)


# ----------------------------------------------------------------------
# Asynchronous dataplane events
# ----------------------------------------------------------------------
_REASONS = ("no_match", "action", "ttl_expired", "up", "down",
            "idle_timeout", "hard_timeout", "delete", "eviction")


def _reason_code(reason: str) -> int:
    try:
        return _REASONS.index(reason)
    except ValueError:
        raise ProtocolError(f"unknown reason string {reason!r}") from None


def _reason_str(code: int) -> str:
    if not 0 <= code < len(_REASONS):
        raise ProtocolError(f"unknown reason code {code}")
    return _REASONS[code]


@_register(10)
class PacketIn(Message):
    """A punted packet: the reactive control plane's bread and butter."""

    def __init__(self, in_port: int = 0, reason: str = "no_match",
                 data: bytes = b"") -> None:
        self.in_port = in_port
        self.reason = reason
        self.data = bytes(data)

    def encode_body(self) -> bytes:
        return struct.pack("!IB", self.in_port,
                           _reason_code(self.reason)) + self.data

    @classmethod
    def decode_body(cls, body: bytes) -> "PacketIn":
        if len(body) < 5:
            raise ProtocolError("PacketIn body truncated")
        in_port, reason = struct.unpack_from("!IB", body)
        return cls(in_port, _reason_str(reason), body[5:])


@_register(11)
class FlowRemoved(Message):
    """Emitted when a flow with SEND_FLOW_REM leaves the table."""

    def __init__(self, table_id: int = 0, match: Optional[Match] = None,
                 priority: int = 0, cookie: int = 0,
                 reason: str = "idle_timeout", duration: float = 0.0,
                 packet_count: int = 0, byte_count: int = 0) -> None:
        self.table_id = table_id
        self.match = match if match is not None else Match()
        self.priority = priority
        self.cookie = cookie
        self.reason = reason
        self.duration = duration
        self.packet_count = packet_count
        self.byte_count = byte_count

    def encode_body(self) -> bytes:
        head = struct.pack(
            "!BHQBdQQ", self.table_id, self.priority, self.cookie,
            _reason_code(self.reason), self.duration,
            self.packet_count, self.byte_count,
        )
        return head + encode_match(self.match)

    @classmethod
    def decode_body(cls, body: bytes) -> "FlowRemoved":
        fmt = struct.Struct("!BHQBdQQ")
        (table_id, priority, cookie, reason, duration,
         packets, nbytes) = fmt.unpack_from(body)
        match, _ = decode_match(body[fmt.size:])
        return cls(table_id, match, priority, cookie, _reason_str(reason),
                   duration, packets, nbytes)


@_register(12)
class PortStatus(Message):
    def __init__(self, reason: str = "down",
                 port: Optional[PortDesc] = None) -> None:
        self.reason = reason
        self.port = port if port is not None else PortDesc(0, b"\0" * 6, False)

    def encode_body(self) -> bytes:
        return bytes([_reason_code(self.reason)]) + self.port.encode()

    @classmethod
    def decode_body(cls, body: bytes) -> "PortStatus":
        if len(body) < 12:
            raise ProtocolError("PortStatus body truncated")
        port, _ = PortDesc.decode(body[1:])
        return cls(_reason_str(body[0]), port)


# ----------------------------------------------------------------------
# Programming verbs
# ----------------------------------------------------------------------
@_register(13)
class PacketOut(Message):
    """Controller-originated packet, executed against an action list."""

    def __init__(self, in_port: int = 0,
                 actions: Optional[List[Action]] = None,
                 data: bytes = b"") -> None:
        self.in_port = in_port
        self.actions = list(actions or [])
        self.data = bytes(data)

    def encode_body(self) -> bytes:
        return (struct.pack("!I", self.in_port)
                + encode_actions(self.actions) + self.data)

    @classmethod
    def decode_body(cls, body: bytes) -> "PacketOut":
        if len(body) < 4:
            raise ProtocolError("PacketOut body truncated")
        (in_port,) = struct.unpack_from("!I", body)
        actions, used = decode_actions(body[4:])
        return cls(in_port, actions, body[4 + used:])


class FlowModCommand:
    ADD = 0
    MODIFY = 1
    DELETE = 2
    DELETE_STRICT = 3


@_register(14)
class FlowMod(Message):
    """Install, modify, or remove flow entries."""

    #: Flag: ask for a FlowRemoved when this entry leaves the table.
    SEND_FLOW_REM = 0x01

    def __init__(
        self,
        command: int = FlowModCommand.ADD,
        table_id: int = 0,
        match: Optional[Match] = None,
        priority: int = 0,
        actions: Optional[List[Action]] = None,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        goto_table: Optional[int] = None,
        flags: int = 0,
    ) -> None:
        self.command = command
        self.table_id = table_id
        self.match = match if match is not None else Match()
        self.priority = priority
        self.actions = list(actions or [])
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.goto_table = goto_table
        self.flags = flags

    def encode_body(self) -> bytes:
        goto = 0xFF if self.goto_table is None else self.goto_table
        head = struct.pack(
            "!BBHddQBB", self.command, self.table_id, self.priority,
            self.idle_timeout, self.hard_timeout, self.cookie, goto,
            self.flags,
        )
        return head + encode_match(self.match) + encode_actions(self.actions)

    @classmethod
    def decode_body(cls, body: bytes) -> "FlowMod":
        fmt = struct.Struct("!BBHddQBB")
        (command, table_id, priority, idle, hard,
         cookie, goto, flags) = fmt.unpack_from(body)
        offset = fmt.size
        match, used = decode_match(body[offset:])
        offset += used
        actions, used = decode_actions(body[offset:])
        return cls(
            command, table_id, match, priority, actions, idle, hard,
            cookie, None if goto == 0xFF else goto, flags,
        )


class ModCommand:
    """Shared add/modify/delete verb for group and meter mods."""

    ADD = 0
    MODIFY = 1
    DELETE = 2


_GROUP_TYPES = (GroupType.ALL, GroupType.SELECT, GroupType.INDIRECT,
                GroupType.FAST_FAILOVER)


@_register(15)
class GroupMod(Message):
    def __init__(self, command: int = ModCommand.ADD, group_id: int = 0,
                 group_type: str = GroupType.ALL,
                 buckets: Optional[List[Bucket]] = None) -> None:
        self.command = command
        self.group_id = group_id
        self.group_type = group_type
        self.buckets = list(buckets or [])

    def encode_body(self) -> bytes:
        body = struct.pack(
            "!BIBH", self.command, self.group_id,
            _GROUP_TYPES.index(self.group_type), len(self.buckets),
        )
        for bucket in self.buckets:
            watch = 0xFFFFFFFF if bucket.watch_port is None else bucket.watch_port
            body += struct.pack("!IH", watch, bucket.weight)
            body += encode_actions(bucket.actions)
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "GroupMod":
        fmt = struct.Struct("!BIBH")
        command, group_id, type_code, count = fmt.unpack_from(body)
        if type_code >= len(_GROUP_TYPES):
            raise ProtocolError(f"unknown group type code {type_code}")
        offset = fmt.size
        buckets = []
        for _ in range(count):
            watch, weight = struct.unpack_from("!IH", body, offset)
            offset += 6
            actions, used = decode_actions(body[offset:])
            offset += used
            buckets.append(Bucket(
                actions,
                watch_port=None if watch == 0xFFFFFFFF else watch,
                weight=weight,
            ))
        return cls(command, group_id, _GROUP_TYPES[type_code], buckets)

    def to_entry(self) -> GroupEntry:
        return GroupEntry(self.group_id, self.group_type, self.buckets)


@_register(16)
class MeterMod(Message):
    def __init__(self, command: int = ModCommand.ADD, meter_id: int = 0,
                 rate_bps: float = 0.0, burst_bytes: int = 0) -> None:
        self.command = command
        self.meter_id = meter_id
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes

    def encode_body(self) -> bytes:
        return struct.pack("!BIdI", self.command, self.meter_id,
                           self.rate_bps, self.burst_bytes)

    @classmethod
    def decode_body(cls, body: bytes) -> "MeterMod":
        command, meter_id, rate, burst = struct.unpack_from("!BIdI", body)
        return cls(command, meter_id, rate, burst)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class StatsKind:
    FLOW = 0
    PORT = 1
    TABLE = 2
    AGGREGATE = 3


@_register(18)
class StatsRequest(Message):
    def __init__(self, kind: int = StatsKind.PORT, table_id: int = 0xFF) -> None:
        self.kind = kind
        self.table_id = table_id  # 0xFF: all tables

    def encode_body(self) -> bytes:
        return struct.pack("!BB", self.kind, self.table_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "StatsRequest":
        kind, table_id = struct.unpack_from("!BB", body)
        return cls(kind, table_id)


class FlowStatsEntry:
    """One flow's statistics inside a FLOW stats reply."""

    __slots__ = ("table_id", "priority", "cookie", "packet_count",
                 "byte_count", "duration", "match")

    def __init__(self, table_id: int, priority: int, cookie: int,
                 packet_count: int, byte_count: int, duration: float,
                 match: Match) -> None:
        self.table_id = table_id
        self.priority = priority
        self.cookie = cookie
        self.packet_count = packet_count
        self.byte_count = byte_count
        self.duration = duration
        self.match = match

    _FMT = struct.Struct("!BHQQQd")

    def encode(self) -> bytes:
        return self._FMT.pack(
            self.table_id, self.priority, self.cookie,
            self.packet_count, self.byte_count, self.duration,
        ) + encode_match(self.match)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["FlowStatsEntry", int]:
        (table_id, priority, cookie,
         packets, nbytes, duration) = cls._FMT.unpack_from(data)
        match, used = decode_match(data[cls._FMT.size:])
        return (
            cls(table_id, priority, cookie, packets, nbytes, duration, match),
            cls._FMT.size + used,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowStatsEntry):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    def __repr__(self) -> str:
        return (
            f"FlowStats(t{self.table_id} p{self.priority} "
            f"{self.packet_count}pkt {self.match!r})"
        )


_PORT_STAT = struct.Struct("!IQQQQQ")
_TABLE_STAT = struct.Struct("!BIQQ")
_AGG_STAT = struct.Struct("!QQI")


@_register(19)
class StatsReply(Message):
    """Statistics payload; ``entries`` layout depends on ``kind``.

    * FLOW: list of :class:`FlowStatsEntry`
    * PORT: list of port-stats dicts (as produced by ``Port.stats``)
    * TABLE: list of ``{"table_id", "active", "lookups", "matches"}``
    * AGGREGATE: one ``{"packets", "bytes", "flows"}`` dict
    """

    def __init__(self, kind: int = StatsKind.PORT,
                 entries: Optional[list] = None) -> None:
        self.kind = kind
        self.entries = list(entries or [])

    def encode_body(self) -> bytes:
        body = struct.pack("!BH", self.kind, len(self.entries))
        if self.kind == StatsKind.FLOW:
            body += b"".join(e.encode() for e in self.entries)
        elif self.kind == StatsKind.PORT:
            for e in self.entries:
                body += _PORT_STAT.pack(
                    e["port"], e["rx_packets"], e["rx_bytes"],
                    e["tx_packets"], e["tx_bytes"], e["tx_drops"],
                )
        elif self.kind == StatsKind.TABLE:
            for e in self.entries:
                body += _TABLE_STAT.pack(
                    e["table_id"], e["active"], e["lookups"], e["matches"]
                )
        elif self.kind == StatsKind.AGGREGATE:
            for e in self.entries:
                body += _AGG_STAT.pack(e["packets"], e["bytes"], e["flows"])
        else:
            raise ProtocolError(f"unknown stats kind {self.kind}")
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "StatsReply":
        kind, count = struct.unpack_from("!BH", body)
        offset = 3
        entries: list = []
        for _ in range(count):
            if kind == StatsKind.FLOW:
                entry, used = FlowStatsEntry.decode(body[offset:])
                entries.append(entry)
                offset += used
            elif kind == StatsKind.PORT:
                vals = _PORT_STAT.unpack_from(body, offset)
                offset += _PORT_STAT.size
                entries.append(dict(zip(
                    ("port", "rx_packets", "rx_bytes",
                     "tx_packets", "tx_bytes", "tx_drops"), vals
                )))
            elif kind == StatsKind.TABLE:
                vals = _TABLE_STAT.unpack_from(body, offset)
                offset += _TABLE_STAT.size
                entries.append(dict(zip(
                    ("table_id", "active", "lookups", "matches"), vals
                )))
            elif kind == StatsKind.AGGREGATE:
                vals = _AGG_STAT.unpack_from(body, offset)
                offset += _AGG_STAT.size
                entries.append(dict(zip(("packets", "bytes", "flows"), vals)))
            else:
                raise ProtocolError(f"unknown stats kind {kind}")
        return cls(kind, entries)


# ----------------------------------------------------------------------
# Synchronisation and multi-controller roles
# ----------------------------------------------------------------------
@_register(20)
class BarrierRequest(Message):
    pass


@_register(21)
class BarrierReply(Message):
    pass


class ControllerRole:
    EQUAL = 0
    PRIMARY = 1
    SECONDARY = 2


@_register(24)
class RoleRequest(Message):
    def __init__(self, role: int = ControllerRole.EQUAL,
                 generation_id: int = 0) -> None:
        self.role = role
        self.generation_id = generation_id

    def encode_body(self) -> bytes:
        return struct.pack("!BQ", self.role, self.generation_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RoleRequest":
        role, generation_id = struct.unpack_from("!BQ", body)
        return cls(role, generation_id)


@_register(25)
class RoleReply(Message):
    def __init__(self, role: int = ControllerRole.EQUAL,
                 generation_id: int = 0) -> None:
        self.role = role
        self.generation_id = generation_id

    def encode_body(self) -> bytes:
        return struct.pack("!BQ", self.role, self.generation_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RoleReply":
        role, generation_id = struct.unpack_from("!BQ", body)
        return cls(role, generation_id)


#: Message types that answer an explicit request and therefore take part
#: in xid correlation.  Async events (PacketIn, FlowRemoved, ...) never
#: consult the pending-request map, whatever their xid says — the two
#: endpoints assign xids independently, so collisions are routine.
#: Error is included so a failed request resolves its caller.
REPLY_TYPES = (EchoReply, FeaturesReply, StatsReply, BarrierReply,
               RoleReply, Error)
