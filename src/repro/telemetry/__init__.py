"""repro.telemetry — the unified observability plane.

One :class:`Telemetry` object bundles the four telemetry primitives and
is threaded through the whole stack by :class:`~repro.core.platform.ZenPlatform`:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters, gauges,
  histograms with labels, published by the sim kernel, links, datapaths,
  control channels, and the controller;
* :class:`~repro.telemetry.trace.Tracer` — packet-lifecycle spans
  (host TX → link → table lookup → punt → dispatch → app → flow-mod);
* :class:`~repro.telemetry.flowrecords.FlowRecordExporter` — NetFlow
  style records emitted on flow expiry/removal;
* :class:`~repro.telemetry.flowrecords.AppProfiler` — wall-clock profile
  of controller event handling by app.

Components default to the module-level :data:`NULL_TELEMETRY`, a shared
disabled instance whose registries/tracers are no-ops — with telemetry
off, the hot paths pay at most a cached boolean check, and a run's event
sequence is bit-identical to one on a build without telemetry at all
(enforced by ``tests/test_telemetry.py``).

Telemetry must never perturb the simulation: nothing in this package
schedules events or draws from the kernel RNG.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.flowrecords import (
    NULL_FLOW_RECORDS,
    NULL_PROFILER,
    AppProfiler,
    FlowRecord,
    FlowRecordExporter,
    NullAppProfiler,
    NullFlowRecordExporter,
)
from repro.telemetry.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.sketch import QuantileSketch
from repro.telemetry.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "AppProfiler",
    "Counter",
    "FlowRecord",
    "FlowRecordExporter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_FLOW_RECORDS",
    "NULL_METRIC",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullAppProfiler",
    "NullFlowRecordExporter",
    "NullRegistry",
    "NullTracer",
    "QuantileSketch",
    "Span",
    "Telemetry",
    "Tracer",
]


class Telemetry:
    """The assembled observability plane for one platform/run."""

    def __init__(
        self,
        enabled: bool = True,
        trace: bool = True,
        trace_sample_every: int = 1,
        max_traces: int = 256,
        max_spans: int = 4096,
        max_flow_records: int = 10_000,
        max_label_sets: int = 1024,
        profile: bool = True,
        trace_id_base: int = 0,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics: MetricsRegistry = MetricsRegistry(
                max_label_sets=max_label_sets
            )
            self.tracer: Tracer = (
                Tracer(sample_every=trace_sample_every,
                       max_traces=max_traces, max_spans=max_spans,
                       id_base=trace_id_base)
                if trace else NULL_TRACER
            )
            if self.tracer.enabled:
                dropped = self.metrics.counter(
                    "telemetry_trace_dropped_spans_total",
                    "Spans evicted by the tracer's retention ring",
                )
                self.tracer.on_drop = dropped.inc
            self.flows: FlowRecordExporter = FlowRecordExporter(
                max_records=max_flow_records
            )
            self.profiler: AppProfiler = (
                AppProfiler() if profile else NULL_PROFILER
            )
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.flows = NULL_FLOW_RECORDS
            self.profiler = NULL_PROFILER

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at the simulation clock.

        Called by :class:`~repro.sim.kernel.Simulator` when a telemetry
        object is attached, so spans are stamped with simulated time.
        """
        if self.tracer.enabled:
            self.tracer.clock = clock

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state}>"


#: Shared disabled instance used as the default everywhere.
NULL_TELEMETRY = Telemetry(enabled=False)


def ensure(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` if given, else the shared disabled instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
