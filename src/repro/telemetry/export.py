"""Exporters: metrics/traces/flow records as JSON or human tables.

Everything here is read-only over the telemetry plane and deterministic
for a given run — with one deliberate exception: the app *profile*
reports host wall-clock time, which varies between runs, so it is kept
out of :func:`snapshot` and :func:`render_report` unless explicitly
requested.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.telemetry.trace import Span, Tracer

__all__ = [
    "best_trace",
    "flow_records_table",
    "metrics_table",
    "profile_table",
    "render_report",
    "render_trace",
    "snapshot",
    "to_json",
]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _format_value(value) -> str:
    if isinstance(value, dict):  # histogram
        text = f"count={value['count']} sum={value['sum']:.6g}"
        quantiles = value.get("quantiles") or {}
        for name in ("p50", "p95", "p99"):
            q = quantiles.get(name)
            if q is not None:
                text += f" {name}={q:.6g}"
        return text
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def metrics_table(registry) -> Table:
    """One row per (family, label set), sorted — the metrics dump."""
    table = Table("Metrics", ["metric", "kind", "labels", "value"])
    for name, family in sorted(registry.snapshot().items()):
        for key, value in family["values"].items():
            table.add_row(name, family["kind"], key or "-",
                          _format_value(value))
    return table


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def best_trace(
    tracer: Tracer,
) -> Optional[Tuple[int, str, List[Span]]]:
    """The most complete trace: most stages crossed, then most spans.

    Ties break toward the lowest trace id, so the pick is deterministic.
    """
    ranked = sorted(
        tracer.traces(),
        key=lambda t: (-len({s.stage for s in t[2]}), -len(t[2]), t[0]),
    )
    for tid, label, spans in ranked:
        if spans:
            return tid, label, spans
    return None


def render_trace(trace_id: int, label: str, spans: List[Span]) -> str:
    """A packet trace as an aligned per-span latency breakdown."""
    if not spans:
        return f"trace #{trace_id} {label}: (no spans)"
    origin = min(s.start for s in spans)
    lines = [f"trace #{trace_id}  {label}  "
             f"({len(spans)} spans, {max(s.end for s in spans) - origin:.6f}s)"]
    for span in sorted(spans, key=lambda s: (s.start, s.end)):
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items())
        )
        lines.append(
            f"  t+{span.start - origin:.6f}s "
            f"{'+' + format(span.duration, '.6f') + 's':>12} "
            f"{span.name:<18} [{span.stage:<10}] {attrs}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flow records
# ----------------------------------------------------------------------
def flow_records_table(exporter) -> Table:
    table = Table(
        "Flow records",
        ["dpid", "table", "five-tuple", "packets", "bytes", "duration",
         "reason"],
    )
    for record in exporter.records:
        table.add_row(record.dpid, record.table_id, record.five_tuple,
                      record.packets, record.bytes,
                      f"{record.duration:.3f}s", record.reason)
    return table


# ----------------------------------------------------------------------
# Profile
# ----------------------------------------------------------------------
def profile_table(profiler, wall: bool = True) -> Table:
    """Controller event-handling profile by app.

    With ``wall=True`` (the default) the table includes host wall-clock
    columns, which are **not** deterministic across runs.
    """
    if wall:
        table = Table(
            "Controller event handling by app (wall time is host time, "
            "not simulated)",
            ["app", "event", "calls", "wall ms", "avg us"],
        )
        for app, event, calls, seconds in profiler.rows():
            table.add_row(app, event, calls, f"{seconds * 1e3:.3f}",
                          f"{seconds / calls * 1e6:.1f}")
    else:
        table = Table("Controller events handled by app",
                      ["app", "event", "calls"])
        for app, events in profiler.call_counts().items():
            for event, calls in events.items():
                table.add_row(app, event, calls)
    return table


# ----------------------------------------------------------------------
# Whole-plane snapshot
# ----------------------------------------------------------------------
def snapshot(telemetry, include_wall_profile: bool = False) -> dict:
    """The full telemetry plane as one JSON-ready dict.

    Deterministic for a given seed unless ``include_wall_profile`` is
    set (wall times are host-dependent).
    """
    doc = {
        "enabled": telemetry.enabled,
        "metrics": telemetry.metrics.snapshot(),
        "traces": telemetry.tracer.to_dict(),
        "flow_records": telemetry.flows.to_dict(),
        "profile_calls": telemetry.profiler.call_counts(),
    }
    if include_wall_profile:
        doc["profile_wall"] = [
            {"app": app, "event": event, "calls": calls,
             "wall_seconds": seconds}
            for app, event, calls, seconds in telemetry.profiler.rows()
        ]
    return doc


def to_json(telemetry, include_wall_profile: bool = False,
            indent: int = 2) -> str:
    return json.dumps(
        snapshot(telemetry, include_wall_profile=include_wall_profile),
        indent=indent, sort_keys=True, default=str,
    )


def render_report(telemetry, include_wall_profile: bool = False) -> str:
    """The human-readable report the ``telemetry`` CLI command prints."""
    parts = [metrics_table(telemetry.metrics).render()]

    tracer = telemetry.tracer
    pick = best_trace(tracer)
    parts.append(f"\nPacket traces: {tracer.trace_count} captured"
                 + (f", {tracer.dropped} dropped (cap)"
                    if tracer.dropped else ""))
    if pick is not None:
        parts.append(render_trace(*pick))

    flows = telemetry.flows
    parts.append(f"\nFlow records: {len(flows)} exported"
                 + (f", {flows.dropped} dropped (cap)"
                    if flows.dropped else ""))
    if len(flows):
        parts.append(flow_records_table(flows).render())

    if include_wall_profile:
        parts.append("")
        parts.append(profile_table(telemetry.profiler, wall=True).render())
    return "\n".join(parts)
