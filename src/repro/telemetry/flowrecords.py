"""NetFlow-style flow records, emitted on flow expiry/removal.

Every flow entry that leaves a datapath's table — idle/hard timeout,
explicit delete, capacity eviction — becomes one :class:`FlowRecord`
carrying the rule's match (including the classic 5-tuple when the rule
constrains it), its byte/packet counters, and its lifetime.  Entries
still resident at the end of a run can be flushed with
:meth:`FlowRecordExporter.flush_datapath` so short experiments always
export a complete picture.
"""

from __future__ import annotations

from typing import List

__all__ = ["FlowRecord", "FlowRecordExporter", "NULL_FLOW_RECORDS",
           "NullFlowRecordExporter"]

#: The classic NetFlow v5 key fields, in order.
FIVE_TUPLE_FIELDS = ("ip_src", "ip_dst", "ip_proto", "l4_src", "l4_dst")


class FlowRecord:
    """One expired/removed flow, in exporter form."""

    __slots__ = ("dpid", "table_id", "priority", "cookie", "fields",
                 "packets", "bytes", "start", "duration", "reason")

    def __init__(self, dpid: int, table_id: int, priority: int,
                 cookie: int, fields: dict, packets: int, nbytes: int,
                 start: float, duration: float, reason: str) -> None:
        self.dpid = dpid
        self.table_id = table_id
        self.priority = priority
        self.cookie = cookie
        #: Constrained match fields, stringified for stable export.
        self.fields = fields
        self.packets = packets
        self.bytes = nbytes
        self.start = start
        self.duration = duration
        self.reason = reason

    @property
    def five_tuple(self) -> str:
        """``src>dst proto sport>dport`` with ``*`` for wildcards."""
        get = self.fields.get
        proto = get("ip_proto", "*")
        return (
            f"{get('ip_src', '*')}>{get('ip_dst', '*')} "
            f"proto={proto} {get('l4_src', '*')}>{get('l4_dst', '*')}"
        )

    def to_dict(self) -> dict:
        return {
            "dpid": self.dpid,
            "table": self.table_id,
            "priority": self.priority,
            "cookie": self.cookie,
            "match": dict(sorted(self.fields.items())),
            "packets": self.packets,
            "bytes": self.bytes,
            "start": self.start,
            "duration": self.duration,
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (
            f"<FlowRecord dpid={self.dpid} {self.five_tuple} "
            f"{self.packets}pkt/{self.bytes}B {self.reason}>"
        )


def _entry_fields(entry) -> dict:
    """The constrained match fields of a flow entry, stringified."""
    fields = {}
    match_fields = getattr(entry.match, "fields", None)
    if callable(match_fields):
        match_fields = match_fields()
    if isinstance(match_fields, dict):
        for name, value in match_fields.items():
            if value is not None:
                fields[name] = str(value)
    return fields


class FlowRecordExporter:
    """Accumulates flow records, bounded to keep long runs sane."""

    enabled = True

    def __init__(self, max_records: int = 10_000) -> None:
        self.max_records = max_records
        self.records: List[FlowRecord] = []
        self.dropped = 0

    def record_removal(self, dpid: int, table_id: int, entry,
                       reason: str, now: float) -> None:
        """Export one entry that just left a flow table."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(FlowRecord(
            dpid=dpid,
            table_id=table_id,
            priority=entry.priority,
            cookie=entry.cookie,
            fields=_entry_fields(entry),
            packets=entry.packet_count,
            nbytes=entry.byte_count,
            start=entry.install_time,
            duration=now - entry.install_time,
            reason=reason,
        ))

    def flush_datapath(self, datapath, reason: str = "active") -> int:
        """Emit records for entries still resident in ``datapath``.

        Returns the number of records emitted.  Use at end-of-run so
        flows that never timed out still appear in the export.
        """
        emitted = 0
        now = datapath.sim.now
        for table in datapath.tables:
            for entry in table:
                self.record_removal(datapath.dpid, table.table_id, entry,
                                    reason, now)
                emitted += 1
        return emitted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_dpid(self, dpid: int) -> List[FlowRecord]:
        return [r for r in self.records if r.dpid == dpid]

    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    def to_dict(self) -> dict:
        return {
            "count": len(self.records),
            "dropped": self.dropped,
            "records": [r.to_dict() for r in self.records],
        }

    def __repr__(self) -> str:
        return f"<FlowRecordExporter {len(self.records)} records>"


class NullFlowRecordExporter(FlowRecordExporter):
    """Disabled exporter: drops everything silently and for free."""

    enabled = False

    def record_removal(self, dpid, table_id, entry, reason, now) -> None:
        pass

    def flush_datapath(self, datapath, reason: str = "active") -> int:
        return 0


NULL_FLOW_RECORDS = NullFlowRecordExporter()


class AppProfiler:
    """Wall-clock profile of controller event handling, by app.

    Simulated time never advances inside an event handler, so the only
    meaningful "where does controller time go" measurement is host wall
    time.  Wall times vary run to run — exporters must keep them out of
    any output that claims determinism (call counts are deterministic).
    """

    enabled = True

    def __init__(self) -> None:
        #: (app, event_type) -> [calls, wall_seconds]
        self._cells = {}

    def record(self, app: str, event: str, wall: float) -> None:
        cell = self._cells.get((app, event))
        if cell is None:
            self._cells[(app, event)] = [1, wall]
        else:
            cell[0] += 1
            cell[1] += wall

    def rows(self) -> List[tuple]:
        """``(app, event, calls, wall_seconds)`` sorted by wall desc."""
        return sorted(
            ((app, event, calls, wall)
             for (app, event), (calls, wall) in self._cells.items()),
            key=lambda row: (-row[3], row[0], row[1]),
        )

    def call_counts(self) -> dict:
        """Deterministic view: ``{app: {event: calls}}`` sorted."""
        out: dict = {}
        for (app, event), (calls, _wall) in sorted(self._cells.items()):
            out.setdefault(app, {})[event] = calls
        return out

    def __repr__(self) -> str:
        return f"<AppProfiler {len(self._cells)} cells>"


class NullAppProfiler(AppProfiler):
    enabled = False

    def record(self, app: str, event: str, wall: float) -> None:
        pass


NULL_PROFILER = NullAppProfiler()
