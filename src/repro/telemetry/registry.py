"""Metrics registry: Counters, Gauges, and Histograms with labels.

The registry is the passive half of the telemetry plane: components
create metric families once at construction time and increment children
on their hot paths.  Two properties keep it honest for a deterministic
simulator:

* **No side effects on the simulation.**  Metrics never schedule events
  or draw random numbers, so enabling them cannot perturb a run.
* **Cheap when disabled.**  A disabled registry hands out a shared
  :data:`NULL_METRIC` whose mutators are no-ops; components additionally
  cache an ``enabled`` flag so per-packet paths pay one boolean check.

Snapshots are fully deterministic: families and label sets are emitted
in sorted order, and values are plain ints/floats.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.telemetry.sketch import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NullMetric",
    "NullRegistry",
    "OVERFLOW_LABEL",
]

#: Default histogram buckets, tuned for simulated latencies (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0,
)

#: Label value all over-cap label sets collapse into (cardinality guard).
OVERFLOW_LABEL = "__overflow__"

#: Default cap on distinct label sets per family.  High enough that no
#: legitimate per-switch/per-link family on the shipped topologies gets
#: near it; low enough that a per-flow label on a million-flow run
#: cannot blow up memory.
DEFAULT_MAX_LABEL_SETS = 1024


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus style).

    Alongside the fixed buckets, every histogram feeds a mergeable
    :class:`~repro.telemetry.sketch.QuantileSketch`, so percentiles
    (:meth:`quantile`) are available at any accuracy the bucket layout
    cannot provide — and the ``repro.obs`` time-series engine can diff
    cumulative sketches into per-scrape windows.
    """

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "sum", "sketch")

    #: Percentiles exported in snapshots and the metrics table.
    EXPORT_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.sketch.observe(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def quantile(self, q: float) -> Optional[float]:
        """The sketched value at quantile ``q``; None while empty."""
        return self.sketch.quantile(q)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                repr(bound): cumulative
                for bound, cumulative in zip(self.buckets, self.bucket_counts)
            },
            "quantiles": {
                f"p{int(q * 100)}": self.quantile(q)
                for q in self.EXPORT_QUANTILES
            },
        }


class NullMetric:
    """Shared do-nothing stand-in for every metric kind (and family)."""

    kind = "null"
    __slots__ = ()

    def labels(self, *_values: str) -> "NullMetric":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float):
        return None

    def snapshot(self):
        return None


NULL_METRIC = NullMetric()


class MetricFamily:
    """A named metric with a fixed label schema and one child per value
    combination.  Children are memoised, so hot paths bind them once.

    Cardinality is capped: once ``max_label_sets`` distinct label sets
    exist, further new label sets collapse into one shared overflow
    child (every label valued :data:`OVERFLOW_LABEL`), so a mistaken
    per-flow label costs one warning counter, not unbounded memory.
    """

    __slots__ = ("name", "help", "labelnames", "_ctor", "_ctor_kwargs",
                 "children", "max_label_sets", "overflowed", "_on_overflow")

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], ctor,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
                 on_overflow: Optional[Callable[[str], None]] = None,
                 **ctor_kwargs) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._ctor = ctor
        self._ctor_kwargs = ctor_kwargs
        self.children: Dict[Tuple[str, ...], object] = {}
        self.max_label_sets = max_label_sets
        #: Label sets redirected into the overflow child so far.
        self.overflowed = 0
        self._on_overflow = on_overflow

    @property
    def kind(self) -> str:
        return self._ctor.kind

    def labels(self, *values) -> object:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {key}"
            )
        child = self.children.get(key)
        if child is None:
            if (self.labelnames
                    and len(self.children) >= self.max_label_sets):
                key = (OVERFLOW_LABEL,) * len(self.labelnames)
                self.overflowed += 1
                if self._on_overflow is not None:
                    self._on_overflow(self.name)
                child = self.children.get(key)
                if child is not None:
                    return child
            child = self._ctor(**self._ctor_kwargs)
            self.children[key] = child
        return child

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "values": {
                ",".join(key): child.snapshot()
                for key, child in sorted(self.children.items())
            },
        }


class MetricsRegistry:
    """Holds every metric family; components get-or-create by name."""

    enabled = True

    def __init__(self,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self.max_label_sets = max_label_sets
        self._m_overflow: Optional[MetricFamily] = None

    # -- family constructors -------------------------------------------
    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        return self._family(name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        return self._family(name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self._family(name, help_text, labels, Histogram,
                            buckets=buckets)

    def _family(self, name: str, help_text: str, labels, ctor, **kwargs):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help_text, labels, ctor,
                                  max_label_sets=self.max_label_sets,
                                  on_overflow=self._note_overflow,
                                  **kwargs)
            self._families[name] = family
        elif family.kind != ctor.kind or family.labelnames != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        # Zero-label families read as a bare metric at the call site.
        if not family.labelnames:
            return family.labels()
        return family

    def _note_overflow(self, family_name: str) -> None:
        """Bump the cardinality-guard warning counter for a family.

        Counts *calls* redirected to the overflow child, so a hot path
        that keeps minting fresh label sets shows up loudly.
        """
        if self._m_overflow is None:
            self._m_overflow = MetricFamily(
                "telemetry_label_overflow_total",
                "labels() calls redirected to the overflow bucket "
                "because the family hit its label-set cap",
                ("family",), Counter,
                max_label_sets=self.max_label_sets,
            )
            self._families[self._m_overflow.name] = self._m_overflow
        self._m_overflow.labels(family_name).inc()

    # -- introspection --------------------------------------------------
    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def get(self, name: str, *labels):
        """The current child value, or None — a test/export convenience."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(str(v) for v in labels)
        child = family.children.get(key)
        return child.snapshot() if child is not None else None

    def snapshot(self) -> dict:
        """Every family, sorted by name; values sorted by label key."""
        return {
            name: family.snapshot()
            for name, family in sorted(self._families.items())
        }

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._families)} families>"


class NullRegistry(MetricsRegistry):
    """Disabled registry: every constructor returns :data:`NULL_METRIC`."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        return NULL_METRIC

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        return NULL_METRIC

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return NULL_METRIC


NULL_REGISTRY = NullRegistry()
