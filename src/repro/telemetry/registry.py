"""Metrics registry: Counters, Gauges, and Histograms with labels.

The registry is the passive half of the telemetry plane: components
create metric families once at construction time and increment children
on their hot paths.  Two properties keep it honest for a deterministic
simulator:

* **No side effects on the simulation.**  Metrics never schedule events
  or draw random numbers, so enabling them cannot perturb a run.
* **Cheap when disabled.**  A disabled registry hands out a shared
  :data:`NULL_METRIC` whose mutators are no-ops; components additionally
  cache an ``enabled`` flag so per-packet paths pay one boolean check.

Snapshots are fully deterministic: families and label sets are emitted
in sorted order, and values are plain ints/floats.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NullMetric",
    "NullRegistry",
]

#: Default histogram buckets, tuned for simulated latencies (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus style)."""

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                repr(bound): cumulative
                for bound, cumulative in zip(self.buckets, self.bucket_counts)
            },
        }


class NullMetric:
    """Shared do-nothing stand-in for every metric kind (and family)."""

    kind = "null"
    __slots__ = ()

    def labels(self, *_values: str) -> "NullMetric":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self):
        return None


NULL_METRIC = NullMetric()


class MetricFamily:
    """A named metric with a fixed label schema and one child per value
    combination.  Children are memoised, so hot paths bind them once."""

    __slots__ = ("name", "help", "labelnames", "_ctor", "_ctor_kwargs",
                 "children")

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], ctor, **ctor_kwargs) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._ctor = ctor
        self._ctor_kwargs = ctor_kwargs
        self.children: Dict[Tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        return self._ctor.kind

    def labels(self, *values) -> object:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {key}"
            )
        child = self.children.get(key)
        if child is None:
            child = self._ctor(**self._ctor_kwargs)
            self.children[key] = child
        return child

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "values": {
                ",".join(key): child.snapshot()
                for key, child in sorted(self.children.items())
            },
        }


class MetricsRegistry:
    """Holds every metric family; components get-or-create by name."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- family constructors -------------------------------------------
    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        return self._family(name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        return self._family(name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self._family(name, help_text, labels, Histogram,
                            buckets=buckets)

    def _family(self, name: str, help_text: str, labels, ctor, **kwargs):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help_text, labels, ctor, **kwargs)
            self._families[name] = family
        elif family.kind != ctor.kind or family.labelnames != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        # Zero-label families read as a bare metric at the call site.
        if not family.labelnames:
            return family.labels()
        return family

    # -- introspection --------------------------------------------------
    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def get(self, name: str, *labels):
        """The current child value, or None — a test/export convenience."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(str(v) for v in labels)
        child = family.children.get(key)
        return child.snapshot() if child is not None else None

    def snapshot(self) -> dict:
        """Every family, sorted by name; values sorted by label key."""
        return {
            name: family.snapshot()
            for name, family in sorted(self._families.items())
        }

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._families)} families>"


class NullRegistry(MetricsRegistry):
    """Disabled registry: every constructor returns :data:`NULL_METRIC`."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        return NULL_METRIC

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        return NULL_METRIC

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return NULL_METRIC


NULL_REGISTRY = NullRegistry()
