"""Mergeable quantile sketch with bounded relative error.

A DDSketch-style log-bucketed sketch: values land in buckets whose
bounds grow geometrically by ``gamma = (1 + alpha) / (1 - alpha)``, so
any quantile estimate is within a relative error of ``alpha`` of the
true value.  Counts are plain integers in a sparse dict, which makes
the sketch

* **mergeable** — adding two sketches' bucket counts gives exactly the
  sketch of the union stream (the property the time-series engine uses
  to aggregate histograms across scrape windows), and
* **subtractable** — a later cumulative sketch minus an earlier one is
  the sketch of the in-between observations, so per-scrape deltas cost
  one sparse dict diff.

Everything is deterministic and JSON-serialisable; no floats are used
as dict keys.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

__all__ = ["QuantileSketch", "DEFAULT_ALPHA"]

#: Default relative accuracy: quantiles within 1% of the true value.
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """Sparse log-bucketed quantile sketch (non-negative values)."""

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_buckets", "_zeros",
                 "count", "sum", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1): {alpha}")
        self.alpha = alpha
        self._gamma = (1 + alpha) / (1 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times.  Negatives clamp to zero —
        the telemetry plane only produces durations/sizes/counts."""
        if n < 1:
            raise ValueError(f"n must be >= 1: {n}")
        if value <= 0:
            self._zeros += n
            value = 0.0
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # ------------------------------------------------------------------
    # Merge / delta
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (in place); returns ``self``."""
        self._check_compatible(other)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self._zeros += other._zeros
        self.count += other.count
        self.sum += other.sum
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        return self

    def delta_since(self, earlier: "QuantileSketch") -> "QuantileSketch":
        """The sketch of observations made after ``earlier`` was copied.

        Requires ``earlier`` to be a previous cumulative state of this
        sketch (bucket counts monotonically non-decreasing); min/max of
        the delta are approximated by the cumulative extremes.
        """
        self._check_compatible(earlier)
        out = QuantileSketch(self.alpha)
        for index, n in self._buckets.items():
            diff = n - earlier._buckets.get(index, 0)
            if diff > 0:
                out._buckets[index] = diff
        out._zeros = max(0, self._zeros - earlier._zeros)
        out.count = max(0, self.count - earlier.count)
        out.sum = self.sum - earlier.sum
        if out.count:
            out.min = self.min
            out.max = self.max
        return out

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.alpha)
        out._buckets = dict(self._buckets)
        out._zeros = self._zeros
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    def _check_compatible(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot combine sketches with alpha {self.alpha} "
                f"and {other.alpha}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """The value at quantile ``q`` in [0, 1]; None when empty."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1]: {q}")
        if not self.count:
            return None
        # Rank of the target observation, 0-based, clamped into range.
        rank = min(self.count - 1, int(q * self.count))
        if rank < self._zeros:
            return 0.0
        seen = self._zeros
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                # Midpoint of the bucket (gamma^(i-1), gamma^i].
                value = 2 * self._gamma ** index / (self._gamma + 1)
                # Never report outside the observed range.
                if self.max is not None:
                    value = min(value, self.max)
                if self.min is not None:
                    value = max(value, self.min)
                return value
        return self.max  # pragma: no cover - counts always add up

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zeros": self._zeros,
            "buckets": {str(i): n
                        for i, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        out = cls(data.get("alpha", DEFAULT_ALPHA))
        out._buckets = {int(i): n for i, n in data["buckets"].items()}
        out._zeros = data.get("zeros", 0)
        out.count = data["count"]
        out.sum = data["sum"]
        out.min = data.get("min")
        out.max = data.get("max")
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        p50 = self.quantile(0.5)
        mid = f" p50={p50:.6g}" if p50 is not None else ""
        return f"<QuantileSketch n={self.count}{mid}>"
