"""Packet-lifecycle tracing: timestamped spans over one frame's journey.

A traced packet carries a ``trace_id`` (a plain int stamped on the
:class:`~repro.packet.base.Packet` object); every layer it crosses
appends a :class:`Span` to the tracer — host TX, link transit, table
lookups, the punt, the control-channel hop, controller dispatch, app
handlers, and the resulting flow-mods/packet-outs.  Spans are stamped
with *simulated* time, so a trace is a causal latency breakdown of one
packet and is bit-identical across runs with the same seed.

Crossing the control channel re-serialises the frame, which strips any
in-memory attribute.  The tracer bridges that gap with a stash/adopt
pair: the sender stashes the trace id under a key derived from the wire
bytes, and the receiver adopts it after decoding.  Channels are ordered
and lossless, so FIFO adoption per key is exact.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NULL_TRACER", "NullTracer", "STAGES"]

#: Canonical stage names, in life-of-a-packet order.  Rendering sorts
#: spans by time, but the stage tells you which layer emitted one.
STAGES = ("host", "link", "dataplane", "channel", "controller", "app")


class Span:
    """One timestamped step of a traced packet's journey."""

    __slots__ = ("trace_id", "name", "stage", "start", "end", "attrs")

    def __init__(self, trace_id: int, name: str, stage: str,
                 start: float, end: float, attrs: dict) -> None:
        self.trace_id = trace_id
        self.name = name
        self.stage = stage
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "attrs": {k: str(v) for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:
        return (
            f"<Span #{self.trace_id} {self.name} [{self.stage}] "
            f"t={self.start:.6f}+{self.duration * 1e6:.1f}us>"
        )


class Tracer:
    """Collects spans per trace id; bounded and sampled for big runs.

    Retention is a ring over *spans*, not just traces: ``max_spans``
    caps the total spans held at once, and once it is exceeded the
    oldest trace's spans are evicted first (whole traces at a time, so
    surviving traces stay complete).  Before this cap the tracer kept
    every span for the whole run — a slow leak at E12-scale workloads.
    Evictions are counted in :attr:`dropped_spans` and reported through
    the ``telemetry_trace_dropped_spans_total`` counter via
    :attr:`on_drop`.
    """

    enabled = True

    def __init__(self, sample_every: int = 1, max_traces: int = 256,
                 max_spans: int = 4096,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans}")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.max_spans = max_spans
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._spans: Dict[int, List[Span]] = {}
        self._labels: Dict[int, str] = {}
        #: Trace ids in creation order — the ring's eviction order.
        self._order: Deque[int] = deque()
        self._span_total = 0
        self._next_id = 1
        self._seen = 0
        self.dropped = 0
        self.dropped_spans = 0
        #: Called with the number of spans evicted by the retention
        #: ring; :class:`~repro.telemetry.Telemetry` points this at a
        #: counter so drops are visible in the metrics plane.
        self.on_drop: Optional[Callable[[int], None]] = None
        self._stash: Dict[Hashable, Deque[Tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------
    def start_trace(self, label: str = "") -> Optional[int]:
        """Begin a trace if the sampler picks this packet; else ``None``."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every:
            return None
        if len(self._spans) >= self.max_traces:
            self.dropped += 1
            return None
        trace_id = self._next_id
        self._next_id += 1
        self._spans[trace_id] = []
        self._labels[trace_id] = label
        self._order.append(trace_id)
        return trace_id

    def record(self, trace_id: Optional[int], name: str, stage: str,
               start: Optional[float] = None, end: Optional[float] = None,
               **attrs) -> None:
        """Append a span; instantaneous unless ``start``/``end`` differ."""
        if trace_id is None:
            return
        spans = self._spans.get(trace_id)
        if spans is None:
            return
        now = self.clock()
        if end is None:
            end = now
        if start is None:
            start = end
        spans.append(Span(trace_id, name, stage, start, end, attrs))
        self._span_total += 1
        if self._span_total > self.max_spans:
            self._evict(keep=trace_id)

    def _evict(self, keep: int) -> None:
        """Drop whole traces, oldest first, until back under the cap.

        The trace currently being written (``keep``) survives even if
        it is the oldest — its own tail would otherwise vanish as it
        grew; a single trace larger than the whole ring is left intact.
        """
        evicted = 0
        while self._span_total > self.max_spans and self._order:
            if self._order[0] == keep:
                if len(self._order) == 1:
                    break
                self._order.rotate(-1)  # spare the live trace this pass
                continue
            tid = self._order.popleft()
            spans = self._spans.pop(tid, None)
            self._labels.pop(tid, None)
            if spans:
                evicted += len(spans)
                self._span_total -= len(spans)
        if evicted:
            self.dropped_spans += evicted
            if self.on_drop is not None:
                self.on_drop(evicted)

    # ------------------------------------------------------------------
    # Cross-serialisation context propagation
    # ------------------------------------------------------------------
    def stash(self, key: Hashable, trace_id: Optional[int]) -> None:
        """Park a trace id before its packet is flattened to bytes."""
        if trace_id is None:
            return
        self._stash.setdefault(key, deque()).append(
            (trace_id, self.clock())
        )

    def adopt(self, key: Hashable) -> Tuple[Optional[int], float]:
        """Claim the oldest stashed ``(trace_id, stash_time)`` for ``key``."""
        queue = self._stash.get(key)
        if not queue:
            return None, 0.0
        entry = queue.popleft()
        if not queue:
            del self._stash[key]
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def traces(self) -> List[Tuple[int, str, List[Span]]]:
        """Every trace as ``(id, label, spans)``, in id order."""
        return [
            (tid, self._labels.get(tid, ""), spans)
            for tid, spans in sorted(self._spans.items())
        ]

    def spans(self, trace_id: int) -> List[Span]:
        return list(self._spans.get(trace_id, ()))

    def stages_of(self, trace_id: int) -> List[str]:
        """Distinct stages the trace crossed, in canonical order."""
        present = {s.stage for s in self._spans.get(trace_id, ())}
        return [s for s in STAGES if s in present]

    @property
    def trace_count(self) -> int:
        return len(self._spans)

    def to_dict(self) -> dict:
        return {
            "count": self.trace_count,
            "dropped": self.dropped,
            "traces": [
                {
                    "id": tid,
                    "label": label,
                    "spans": [s.to_dict() for s in spans],
                }
                for tid, label, spans in self.traces()
            ],
        }

    def __repr__(self) -> str:
        return f"<Tracer {self.trace_count} traces>"


class NullTracer(Tracer):
    """Disabled tracer: never samples, never stores."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def start_trace(self, label: str = "") -> Optional[int]:
        return None

    def record(self, trace_id, name, stage, start=None, end=None,
               **attrs) -> None:
        pass

    def stash(self, key, trace_id) -> None:
        pass

    def adopt(self, key):
        return None, 0.0


NULL_TRACER = NullTracer()
