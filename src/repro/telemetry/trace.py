"""Packet-lifecycle tracing: timestamped spans over one frame's journey.

A traced packet carries a ``trace_id`` (a plain int stamped on the
:class:`~repro.packet.base.Packet` object); every layer it crosses
appends a :class:`Span` to the tracer — host TX, link transit, table
lookups, the punt, the control-channel hop, controller dispatch, app
handlers, and the resulting flow-mods/packet-outs.  Spans are stamped
with *simulated* time, so a trace is a causal latency breakdown of one
packet and is bit-identical across runs with the same seed.

Crossing the control channel re-serialises the frame, which strips any
in-memory attribute.  The tracer bridges that gap with a stash/adopt
pair: the sender stashes the trace id under a key derived from the wire
bytes, and the receiver adopts it after decoding.  Channels are ordered
and lossless, so FIFO adoption per key is exact.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NULL_TRACER", "NullTracer", "STAGES",
           "EXTRA_STAGES", "ALL_STAGES"]

#: Canonical stage names, in life-of-a-packet order.  Rendering sorts
#: spans by time, but the stage tells you which layer emitted one.
STAGES = ("host", "link", "dataplane", "channel", "controller", "app")

#: Stages outside the single-packet lifecycle: ``shard`` marks boundary
#: hops between shard kernels, ``fault`` marks injection roots, and
#: ``cluster`` the east-west handover machinery.  Kept separate so the
#: packet-lifecycle acceptance bar (a trace crossing every ``STAGES``
#: entry) stays meaningful on a single-controller platform.
EXTRA_STAGES = ("shard", "cluster", "fault")

#: Every stage any layer may emit, in canonical render order.
ALL_STAGES = STAGES + EXTRA_STAGES


class Span:
    """One timestamped step of a traced packet's journey.

    ``span_id`` is unique across the whole tracer (and, via the
    tracer's ``id_base``, across every shard of a sharded run);
    ``parent`` points at the causally preceding span of the same
    trace, turning a trace from a flat timeline into a span *tree*
    whose longest root-to-leaf chain is the critical path.
    """

    __slots__ = ("trace_id", "span_id", "parent", "name", "stage",
                 "start", "end", "attrs")

    def __init__(self, trace_id: int, name: str, stage: str,
                 start: float, end: float, attrs: dict,
                 span_id: int = 0, parent: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.stage = stage
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "attrs": {k: str(v) for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:
        return (
            f"<Span #{self.trace_id} {self.name} [{self.stage}] "
            f"t={self.start:.6f}+{self.duration * 1e6:.1f}us>"
        )


class Tracer:
    """Collects spans per trace id; bounded and sampled for big runs.

    Retention is a ring over *spans*, not just traces: ``max_spans``
    caps the total spans held at once, and once it is exceeded the
    oldest trace's spans are evicted first (whole traces at a time, so
    surviving traces stay complete).  Before this cap the tracer kept
    every span for the whole run — a slow leak at E12-scale workloads.
    Evictions are counted in :attr:`dropped_spans` and reported through
    the ``telemetry_trace_dropped_spans_total`` counter via
    :attr:`on_drop`.
    """

    enabled = True

    def __init__(self, sample_every: int = 1, max_traces: int = 256,
                 max_spans: int = 4096,
                 clock: Optional[Callable[[], float]] = None,
                 id_base: int = 0) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1: {max_spans}")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.max_spans = max_spans
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        #: Offset for every id this tracer mints.  A sharded run gives
        #: shard *k* the base ``k * SHARD_ID_STRIDE``, so trace and
        #: span ids are globally unique and the engine can merge the
        #: per-shard tracers into one artifact without renumbering.
        self.id_base = id_base
        self._spans: Dict[int, List[Span]] = {}
        self._labels: Dict[int, str] = {}
        #: Trace ids in creation order — the ring's eviction order.
        self._order: Deque[int] = deque()
        self._span_total = 0
        self._next_id = id_base + 1
        self._span_seq = id_base
        self._seen = 0
        self.dropped = 0
        self.dropped_spans = 0
        #: Stash entries discarded because their connection scope
        #: epoch-bumped before adoption (the PR-10 leak fix).
        self.stash_pruned = 0
        #: Called with the number of spans evicted by the retention
        #: ring; :class:`~repro.telemetry.Telemetry` points this at a
        #: counter so drops are visible in the metrics plane.
        self.on_drop: Optional[Callable[[int], None]] = None
        #: Called with every recorded :class:`Span` (after append).
        #: The flight recorder feeds its per-component rings from this;
        #: hooks must be pure — no events, no RNG.
        self.on_span: Optional[Callable[[Span], None]] = None
        self._stash: Dict[
            Hashable, Deque[Tuple[int, float, Hashable]]
        ] = {}

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------
    def start_trace(self, label: str = "") -> Optional[int]:
        """Begin a trace if the sampler picks this packet; else ``None``."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every:
            return None
        if len(self._spans) >= self.max_traces:
            self.dropped += 1
            return None
        trace_id = self._next_id
        self._next_id += 1
        self._spans[trace_id] = []
        self._labels[trace_id] = label
        self._order.append(trace_id)
        return trace_id

    def record(self, trace_id: Optional[int], name: str, stage: str,
               start: Optional[float] = None, end: Optional[float] = None,
               parent: Optional[int] = None, **attrs) -> Optional[int]:
        """Append a span; instantaneous unless ``start``/``end`` differ.

        ``parent`` links the span under a previously recorded one (by
        span id) to form the causal tree.  Returns the new span's id so
        callers can thread it through as the next parent, or ``None``
        when the trace is unsampled/evicted.
        """
        if trace_id is None:
            return None
        spans = self._spans.get(trace_id)
        if spans is None:
            return None
        now = self.clock()
        if end is None:
            end = now
        if start is None:
            start = end
        self._span_seq += 1
        span = Span(trace_id, name, stage, start, end, attrs,
                    span_id=self._span_seq, parent=parent)
        spans.append(span)
        self._span_total += 1
        if self.on_span is not None:
            self.on_span(span)
        if self._span_total > self.max_spans:
            self._evict(keep=trace_id)
        return span.span_id

    def end_span(self, trace_id: Optional[int], span_id: Optional[int],
                 end: Optional[float] = None) -> None:
        """Move a recorded span's end time forward (span-around-work)."""
        if trace_id is None or span_id is None:
            return
        for span in reversed(self._spans.get(trace_id, ())):
            if span.span_id == span_id:
                span.end = self.clock() if end is None else end
                return

    def adopt_foreign(self, trace_id: Optional[int],
                      label: str = "") -> bool:
        """Register a trace id minted by *another* tracer.

        Used by the sharded kernel when a traced frame crosses a
        boundary link: the receiving shard's tracer starts recording
        spans under the sender's globally unique id.  Bypasses the
        sampler (the origin shard already made the sampling decision)
        but still honours ``max_traces``.
        """
        if trace_id is None:
            return False
        if trace_id in self._spans:
            return True
        if len(self._spans) >= self.max_traces:
            self.dropped += 1
            return False
        self._spans[trace_id] = []
        self._labels[trace_id] = label
        self._order.append(trace_id)
        return True

    def _evict(self, keep: int) -> None:
        """Drop whole traces, oldest first, until back under the cap.

        The trace currently being written (``keep``) survives even if
        it is the oldest — its own tail would otherwise vanish as it
        grew; a single trace larger than the whole ring is left intact.
        """
        evicted = 0
        while self._span_total > self.max_spans and self._order:
            if self._order[0] == keep:
                if len(self._order) == 1:
                    break
                self._order.rotate(-1)  # spare the live trace this pass
                continue
            tid = self._order.popleft()
            spans = self._spans.pop(tid, None)
            self._labels.pop(tid, None)
            if spans:
                evicted += len(spans)
                self._span_total -= len(spans)
        if evicted:
            self.dropped_spans += evicted
            if self.on_drop is not None:
                self.on_drop(evicted)

    # ------------------------------------------------------------------
    # Cross-serialisation context propagation
    # ------------------------------------------------------------------
    def stash(self, key: Hashable, trace_id: Optional[int],
              scope: Hashable = None) -> None:
        """Park a trace id before its packet is flattened to bytes.

        ``scope`` names the connection the bytes ride (the control
        channel object); :meth:`prune_scope` evicts every entry of a
        scope when its connection epoch bumps, because frames
        serialised into the old epoch are dropped on arrival and their
        stashed ids would otherwise never be adopted — they used to
        accumulate forever *and* could be mis-adopted by an identical
        post-reconnect frame.
        """
        if trace_id is None:
            return
        self._stash.setdefault(key, deque()).append(
            (trace_id, self.clock(), scope)
        )

    def adopt(self, key: Hashable) -> Tuple[Optional[int], float]:
        """Claim the oldest stashed ``(trace_id, stash_time)`` for ``key``."""
        queue = self._stash.get(key)
        if not queue:
            return None, 0.0
        trace_id, stashed_at, _scope = queue.popleft()
        if not queue:
            del self._stash[key]
        return trace_id, stashed_at

    def prune_scope(self, scope: Hashable) -> int:
        """Drop every stash entry parked under ``scope``.

        Called by :class:`~repro.southbound.channel.ControlChannel` on
        every connection epoch change; returns the number of entries
        pruned (also accumulated in :attr:`stash_pruned`).
        """
        if scope is None:
            return 0
        pruned = 0
        dead_keys = []
        for key, queue in self._stash.items():
            kept = deque(e for e in queue if e[2] is not scope)
            removed = len(queue) - len(kept)
            if removed:
                pruned += removed
                if kept:
                    self._stash[key] = kept
                else:
                    dead_keys.append(key)
        for key in dead_keys:
            del self._stash[key]
        self.stash_pruned += pruned
        return pruned

    @property
    def stash_size(self) -> int:
        """Entries currently parked (leak regression surface)."""
        return sum(len(q) for q in self._stash.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def traces(self) -> List[Tuple[int, str, List[Span]]]:
        """Every trace as ``(id, label, spans)``, in id order."""
        return [
            (tid, self._labels.get(tid, ""), spans)
            for tid, spans in sorted(self._spans.items())
        ]

    def spans(self, trace_id: int) -> List[Span]:
        return list(self._spans.get(trace_id, ()))

    def stages_of(self, trace_id: int) -> List[str]:
        """Distinct stages the trace crossed, in canonical order."""
        present = {s.stage for s in self._spans.get(trace_id, ())}
        return [s for s in ALL_STAGES if s in present]

    @property
    def trace_count(self) -> int:
        return len(self._spans)

    def to_dict(self) -> dict:
        return {
            "count": self.trace_count,
            "dropped": self.dropped,
            "traces": [
                {
                    "id": tid,
                    "label": label,
                    "spans": [s.to_dict() for s in spans],
                }
                for tid, label, spans in self.traces()
            ],
        }

    def __repr__(self) -> str:
        return f"<Tracer {self.trace_count} traces>"


class NullTracer(Tracer):
    """Disabled tracer: never samples, never stores."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def start_trace(self, label: str = "") -> Optional[int]:
        return None

    def record(self, trace_id, name, stage, start=None, end=None,
               parent=None, **attrs) -> Optional[int]:
        return None

    def end_span(self, trace_id, span_id, end=None) -> None:
        pass

    def adopt_foreign(self, trace_id, label="") -> bool:
        return False

    def stash(self, key, trace_id, scope=None) -> None:
        pass

    def adopt(self, key):
        return None, 0.0

    def prune_scope(self, scope) -> int:
        return 0


NULL_TRACER = NullTracer()
