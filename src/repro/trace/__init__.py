"""repro.trace — the causal trace plane.

PR 1 gave every packet a flat span timeline; the scale planes broke it
— a trace died at a shard boundary link, and a mastership handover left
no record connecting bus death-detection to recovery.  This package
restores the *why* behind every number the obs plane reports:

* :class:`~repro.trace.artifact.TraceArtifact` — the serialised span
  forest, mergeable across shard tracers (globally unique ids via
  ``SHARD_ID_STRIDE``);
* :func:`~repro.trace.critical.critical_path` — the longest causal
  chain of a trace with per-stage latency attribution;
* :class:`~repro.trace.flight.FlightRecorder` — bounded per-component
  span rings dumped the instant an invariant violation or SLO alert
  fires;
* :mod:`~repro.trace.render` — ASCII span trees and critical-path
  tables for the CLI and CI logs.

Everything here is a pure observer: no kernel events, no RNG, so a
seeded run is bit-identical with the trace plane on or off (the
telemetry doctrine, enforced by differential tests and gated as E18).
"""

from repro.trace.artifact import (
    FORMAT,
    SHARD_ID_STRIDE,
    TraceArtifact,
    shard_of_id,
)
from repro.trace.critical import critical_path
from repro.trace.flight import FlightRecorder
from repro.trace.render import render_critical_path, render_tree

__all__ = [
    "FORMAT",
    "FlightRecorder",
    "SHARD_ID_STRIDE",
    "TraceArtifact",
    "critical_path",
    "render_critical_path",
    "render_tree",
    "shard_of_id",
]
