"""TraceArtifact: the serialised form of a run's causal traces.

One artifact holds every trace the run produced (or, for a flight
recorder dump, the bounded tail of them): span trees with globally
unique span ids, the triggers that caused the capture, and run
metadata.  Artifacts are deterministic — built only from simulated
time and tracer state, with sorted keys — so two identical-seed runs
serialise byte-identically, and the sharded engine can merge the
per-shard tracers into one artifact without renumbering anything
(shard *k* mints ids above ``k * SHARD_ID_STRIDE``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional

__all__ = ["TraceArtifact", "SHARD_ID_STRIDE", "shard_of_id", "FORMAT"]

FORMAT = "zensdn-trace-artifact-v1"

#: Id stride per shard: shard *k*'s tracer mints trace and span ids in
#: ``(k * STRIDE, (k + 1) * STRIDE]``, so ids are globally unique and
#: the owning shard of any id is ``id // STRIDE``.
SHARD_ID_STRIDE = 1_000_000_000


def shard_of_id(any_id: int) -> int:
    """The shard whose tracer minted ``any_id`` (0 for unsharded runs)."""
    return any_id // SHARD_ID_STRIDE


class TraceArtifact:
    """Plain-data bundle of traces + capture triggers + metadata.

    ``traces`` is a list of ``{"id", "label", "spans"}`` dicts whose
    spans carry ``span_id``/``parent`` links (see
    :class:`~repro.telemetry.trace.Span`); ``triggers`` records why the
    artifact exists (flight-recorder dumps name the violation or alert
    that fired); ``meta`` is free-form run context.
    """

    def __init__(self, traces: List[dict],
                 triggers: Optional[List[dict]] = None,
                 meta: Optional[dict] = None) -> None:
        self.traces = traces
        self.triggers = triggers if triggers is not None else []
        self.meta = meta if meta is not None else {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer, meta: Optional[dict] = None,
                    triggers: Optional[List[dict]] = None,
                    ) -> "TraceArtifact":
        """Snapshot every live trace of one tracer."""
        traces = [
            {"id": tid, "label": label,
             "spans": [s.to_dict() for s in spans]}
            for tid, label, spans in tracer.traces()
        ]
        doc = dict(meta or {})
        doc.setdefault("dropped_traces", tracer.dropped)
        doc.setdefault("dropped_spans", tracer.dropped_spans)
        return cls(traces, triggers=triggers, meta=doc)

    @classmethod
    def merge(cls, artifacts: Iterable["TraceArtifact"],
              meta: Optional[dict] = None) -> "TraceArtifact":
        """Fuse artifacts (one per shard) into one global artifact.

        Traces sharing an id — a frame that crossed a boundary link, so
        two shards hold halves of its span tree — are unioned: spans
        concatenated and sorted by ``(start, span_id)``, parent links
        left intact (span ids are globally unique by the stride
        scheme).  The label comes from whichever shard named the trace
        (the origin shard; receivers adopt with an empty label).
        """
        merged: Dict[int, dict] = {}
        triggers: List[dict] = []
        parts = list(artifacts)
        for part in parts:
            triggers.extend(part.triggers)
            for trace in part.traces:
                bucket = merged.get(trace["id"])
                if bucket is None:
                    merged[trace["id"]] = {
                        "id": trace["id"],
                        "label": trace["label"],
                        "spans": list(trace["spans"]),
                    }
                else:
                    bucket["spans"].extend(trace["spans"])
                    if not bucket["label"]:
                        bucket["label"] = trace["label"]
        traces = []
        for tid in sorted(merged):
            trace = merged[tid]
            trace["spans"].sort(
                key=lambda s: (s["start"], s["span_id"]))
            traces.append(trace)
        doc = dict(meta or {})
        doc.setdefault("merged_from", len(parts))
        return cls(traces, triggers=triggers, meta=doc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def trace(self, trace_id: int) -> Optional[dict]:
        for trace in self.traces:
            if trace["id"] == trace_id:
                return trace
        return None

    def longest(self) -> Optional[dict]:
        """The trace spanning the most simulated time (ties: lowest id)."""
        best = None
        best_key = None
        for trace in self.traces:
            spans = trace["spans"]
            if not spans:
                continue
            extent = (max(s["end"] for s in spans)
                      - min(s["start"] for s in spans))
            key = (-extent, trace["id"])
            if best_key is None or key < best_key:
                best, best_key = trace, key
        return best

    def shards_of(self, trace: dict) -> List[int]:
        """Distinct shards whose tracers contributed spans, sorted."""
        return sorted({shard_of_id(s["span_id"])
                       for s in trace["spans"]})

    @property
    def span_count(self) -> int:
        return sum(len(t["spans"]) for t in self.traces)

    @property
    def digest(self) -> str:
        """Canonical content hash (determinism gate surface)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "meta": self.meta,
            "triggers": self.triggers,
            "traces": self.traces,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceArtifact":
        tag = data.get("format")
        if tag != FORMAT:
            raise ValueError(f"not a {FORMAT} artifact (format={tag!r})")
        return cls(list(data.get("traces", ())),
                   triggers=list(data.get("triggers", ())),
                   meta=dict(data.get("meta", {})))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "TraceArtifact":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:
        return (f"<TraceArtifact {len(self.traces)} traces, "
                f"{self.span_count} spans, "
                f"{len(self.triggers)} triggers>")
