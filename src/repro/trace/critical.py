"""Critical-path extraction over one trace's span tree.

The critical path of a trace is the causal chain that determined when
the trace *finished*: start from the span with the latest end time,
walk parent links back to a root, and prepend the flat (un-parented)
prefix — the host/link/dataplane spans recorded before the controller
started threading parents — in time order, which for a single packet's
journey is causal order.

Each stage on the path is attributed ``elapsed = end - previous stage's
end``: the time the trace spent *waiting for and executing* that stage.
Elapsed sums telescope to the whole path duration, so per-stage
attribution answers "where did the latency go" exactly — the POX/
Floodlight controller-study methodology, applied to our own stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["critical_path"]


def _as_span_dicts(trace) -> List[dict]:
    spans = trace["spans"] if isinstance(trace, dict) else trace
    out = []
    for span in spans:
        if isinstance(span, dict):
            out.append(span)
        else:  # a telemetry Span object
            out.append(span.to_dict())
    return out


def critical_path(trace) -> dict:
    """Compute the critical path of one trace.

    ``trace`` is a ``{"id", "label", "spans"}`` dict (artifact form) or
    a bare span list; spans may be dicts or
    :class:`~repro.telemetry.trace.Span` objects.

    Returns ``{"trace_id", "label", "total", "stages", "by_stage"}``
    where ``stages`` is the ordered chain (each with ``name``,
    ``stage``, ``start``, ``end``, ``elapsed``, ``self``) and
    ``by_stage`` aggregates elapsed per stage name.
    """
    spans = _as_span_dicts(trace)
    trace_id = trace.get("id") if isinstance(trace, dict) else None
    label = trace.get("label", "") if isinstance(trace, dict) else ""
    if not spans:
        return {"trace_id": trace_id, "label": label, "total": 0.0,
                "stages": [], "by_stage": {}}

    by_id: Dict[int, dict] = {}
    for span in spans:
        sid = span.get("span_id", 0)
        if sid:
            by_id[sid] = span

    # Terminal span: latest end; ties break on span id so the pick is
    # deterministic and favours the most recently recorded span.
    leaf = max(spans, key=lambda s: (s["end"], s.get("span_id", 0)))

    # Walk parent links to the chain's root (cycle-guarded).
    chain: List[dict] = [leaf]
    seen = {leaf.get("span_id", 0)}
    while True:
        parent: Optional[int] = chain[-1].get("parent")
        if parent is None or parent not in by_id or parent in seen:
            break
        seen.add(parent)
        chain.append(by_id[parent])
    chain.reverse()

    # Stitch the flat prefix: spans recorded before parent-threading
    # began (host TX, link transit, table lookups) causally precede the
    # chain root when they end by its start.  Time order == causal
    # order for the single-packet prefix.
    root_start = chain[0]["start"]
    chain_ids = {id(s) for s in chain}
    prefix = sorted(
        (s for s in spans
         if id(s) not in chain_ids
         and s.get("parent") is None
         and s["end"] <= root_start),
        key=lambda s: (s["start"], s["end"], s.get("span_id", 0)),
    )
    chain = prefix + chain

    stages = []
    by_stage: Dict[str, float] = {}
    prev_end = chain[0]["start"]
    for span in chain:
        elapsed = max(0.0, span["end"] - prev_end)
        stages.append({
            "name": span["name"],
            "stage": span.get("stage", ""),
            "span_id": span.get("span_id", 0),
            "start": span["start"],
            "end": span["end"],
            "elapsed": elapsed,
            "self": span["end"] - span["start"],
        })
        key = span.get("stage", "") or span["name"]
        by_stage[key] = by_stage.get(key, 0.0) + elapsed
        prev_end = max(prev_end, span["end"])
    total = chain[-1]["end"] - chain[0]["start"]
    return {"trace_id": trace_id, "label": label, "total": total,
            "stages": stages, "by_stage": by_stage}
