"""Flight recorder: bounded span/event rings with triggered capture.

An aircraft flight recorder does not stream; it keeps a bounded tail of
everything and survives the crash.  This one holds per-component rings
of the most recent spans (fed by the tracer's ``on_span`` hook, so it
sees spans even after the tracer's own retention ring evicts their
traces) plus a ring of fault/check events, and *dumps* a deterministic
:class:`~repro.trace.artifact.TraceArtifact` the instant something goes
red: an :class:`~repro.check.monitor.InvariantMonitor` violation or an
SLO alert firing.  Every red verdict therefore ships its causal
history, bounded in memory no matter how long the run.

Doctrine: the recorder is a pure observer.  Hook bodies read state and
append to Python lists — no kernel events, no RNG — so arming it leaves
a seeded run bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.trace.artifact import TraceArtifact

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded capture of recent spans + events, dumped on triggers.

    Parameters
    ----------
    telemetry:
        The run's telemetry plane; the recorder chains its tracer's
        ``on_span`` hook.
    capacity:
        Spans retained per component ring (component = span stage).
    max_events:
        Fault/check events retained.
    max_dumps:
        Artifacts kept; later triggers beyond this are counted in
        :attr:`dumps_suppressed` but not captured (a red run would
        otherwise dump per violation, unbounded).
    """

    def __init__(self, telemetry, capacity: int = 256,
                 max_events: int = 256, max_dumps: int = 8) -> None:
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.rings: Dict[str, Deque] = {}
        self.events: Deque[dict] = deque(maxlen=max_events)
        self.dumps: List[TraceArtifact] = []
        self.dumps_suppressed = 0
        self.spans_seen = 0
        self._tracer = telemetry.tracer
        if self._tracer.enabled:
            previous = self._tracer.on_span

            def hook(span) -> None:
                if previous is not None:
                    previous(span)
                self._on_span(span)

            self._tracer.on_span = hook

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def _on_span(self, span) -> None:
        self.spans_seen += 1
        ring = self.rings.get(span.stage)
        if ring is None:
            ring = self.rings[span.stage] = deque(maxlen=self.capacity)
        ring.append(span)

    def note_event(self, kind: str, detail: str, time: float) -> None:
        """Append one contextual event to the event ring."""
        self.events.append({"time": time, "kind": kind,
                            "detail": detail})

    # ------------------------------------------------------------------
    # Trigger wiring (chains existing hooks; never replaces behaviour)
    # ------------------------------------------------------------------
    def watch_faults(self, schedule) -> "FlightRecorder":
        """Record every injection in the event ring (context, not a
        dump trigger — faults are scripted, not failures)."""
        previous = schedule.on_fire

        def hook(event) -> None:
            if previous is not None:
                previous(event)
            self.note_event(f"fault:{event.kind}", event.target,
                            event.time)

        schedule.on_fire = hook
        return self

    def watch_monitor(self, monitor) -> "FlightRecorder":
        """Dump when an invariant check comes back red."""
        previous = monitor.on_record

        def hook(record) -> None:
            if previous is not None:
                previous(record)
            if not record.result.ok:
                names = ",".join(sorted(
                    v.invariant for v in record.result.violations))
                self.trigger("violation",
                             f"{names} at {record.trigger}",
                             record.time)

        monitor.on_record = hook
        return self

    def watch_alerts(self, evaluator) -> "FlightRecorder":
        """Dump when an SLO alert fires."""
        evaluator.on_alert.append(
            lambda alert: self.trigger("alert", alert.slo,
                                       alert.fired_at))
        return self

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def trigger(self, kind: str, detail: str, time: float) -> Optional[
            TraceArtifact]:
        """Capture the rings into an artifact (bounded by max_dumps)."""
        self.note_event(kind, detail, time)
        if len(self.dumps) >= self.max_dumps:
            self.dumps_suppressed += 1
            return None
        artifact = self.snapshot(
            triggers=[{"time": time, "kind": kind, "detail": detail}])
        self.dumps.append(artifact)
        return artifact

    def snapshot(self, triggers: Optional[List[dict]] = None,
                 ) -> TraceArtifact:
        """The rings' current contents as a deterministic artifact.

        Spans are regrouped by trace id (a ring is per *component*);
        trace labels come from the live tracer where the trace still
        exists, else empty — eviction is part of the story a bounded
        recorder tells.
        """
        grouped: Dict[int, List[dict]] = {}
        for stage in sorted(self.rings):
            for span in self.rings[stage]:
                grouped.setdefault(span.trace_id, []).append(
                    span.to_dict())
        traces = []
        labels = getattr(self._tracer, "_labels", {})
        for tid in sorted(grouped):
            spans = sorted(grouped[tid],
                           key=lambda s: (s["start"], s["span_id"]))
            traces.append({"id": tid, "label": labels.get(tid, ""),
                           "spans": spans})
        meta = {
            "kind": "flight-recorder",
            "capacity": self.capacity,
            "spans_seen": self.spans_seen,
            "events": list(self.events),
            "rings": {stage: len(ring)
                      for stage, ring in sorted(self.rings.items())},
        }
        return TraceArtifact(traces, triggers=list(triggers or ()),
                             meta=meta)

    def __repr__(self) -> str:
        held = sum(len(r) for r in self.rings.values())
        return (f"<FlightRecorder {held} spans in "
                f"{len(self.rings)} rings, {len(self.dumps)} dumps>")
