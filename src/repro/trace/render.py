"""ASCII rendering for span trees and critical paths.

Pure functions from artifact-form trace dicts to text, in the same
plain-ASCII style as the obs dashboards — greppable in CI logs, no
terminal features assumed.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["render_tree", "render_critical_path"]


def _fmt_t(t: float) -> str:
    return f"{t:.6f}"


def _fmt_d(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _attr_suffix(span: dict) -> str:
    attrs = span.get("attrs") or {}
    if not attrs:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  {{{inner}}}"


def render_tree(trace: dict, attrs: bool = False) -> str:
    """Render one trace's span tree as an ASCII outline.

    Roots are spans with no (resolvable) parent, in time order;
    children sort by ``(start, span_id)``.  A flat legacy trace renders
    as a root-level sequence, which is its causal order anyway.
    """
    spans: List[dict] = list(trace.get("spans", ()))
    lines = [
        f"trace #{trace.get('id', '?')} "
        f"{trace.get('label', '') or '(unlabelled)'} "
        f"({len(spans)} spans)"
    ]
    if not spans:
        return "\n".join(lines)
    ids = {s.get("span_id", 0) for s in spans}
    children: Dict[int, List[dict]] = {}
    roots: List[dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in ids:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    order = (lambda s: (s["start"], s.get("span_id", 0)))
    roots.sort(key=order)
    for kids in children.values():
        kids.sort(key=order)

    def emit(span: dict, prefix: str, is_last: bool,
             is_root: bool) -> None:
        if is_root:
            stem, cont = "", ""
        else:
            stem = "`- " if is_last else "|- "
            cont = "   " if is_last else "|  "
        dur = span["end"] - span["start"]
        dur_s = f" +{_fmt_d(dur)}" if dur > 0 else ""
        lines.append(
            f"{prefix}{stem}{span['name']} [{span.get('stage', '')}] "
            f"t={_fmt_t(span['start'])}{dur_s}"
            f"{_attr_suffix(span) if attrs else ''}"
        )
        kids = children.get(span.get("span_id", 0), ())
        for i, kid in enumerate(kids):
            emit(kid, prefix + ("" if is_root else cont),
                 i == len(kids) - 1, False)

    for i, root in enumerate(roots):
        emit(root, "", i == len(roots) - 1, True)
    return "\n".join(lines)


def render_critical_path(path: dict) -> str:
    """Render a :func:`~repro.trace.critical.critical_path` result."""
    stages = path.get("stages", ())
    header = (
        f"critical path of trace #{path.get('trace_id', '?')} "
        f"{path.get('label', '') or ''}".rstrip()
        + f": {_fmt_d(path.get('total', 0.0))} over "
        f"{len(stages)} stages"
    )
    lines = [header]
    if not stages:
        return header
    name_w = max(len(s["name"]) for s in stages)
    stage_w = max(len(s["stage"]) for s in stages)
    for s in stages:
        lines.append(
            f"  t={_fmt_t(s['start'])}  {s['name']:<{name_w}}  "
            f"[{s['stage']:<{stage_w}}]  +{_fmt_d(s['elapsed'])}"
        )
    by_stage = path.get("by_stage", {})
    if by_stage:
        total = path.get("total", 0.0) or 1.0
        lines.append("  attribution:")
        for stage in sorted(by_stage, key=lambda k: (-by_stage[k], k)):
            share = by_stage[stage] / total * 100.0 if total else 0.0
            lines.append(
                f"    {stage:<{max(stage_w, 10)}} "
                f"{_fmt_d(by_stage[stage]):>10}  {share:5.1f}%"
            )
    return "\n".join(lines)
