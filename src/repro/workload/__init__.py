"""repro.workload — declarative scenarios with realistic traffic.

The workload plane closes the loop between the paper's qualitative
claims and measurable runs: a :class:`~repro.workload.spec.WorkloadSpec`
(JSON/YAML) names a topology family, a traffic mix, faults, SLOs, and a
seed; :func:`~repro.workload.runner.run_workload` turns it into a fully
wired :class:`~repro.core.platform.ZenPlatform` run with the obs plane
attached, and :func:`~repro.workload.runner.run_suite` fans scenario
suites across worker processes with bit-identical per-run digests.

Building blocks, usable directly too:

* :mod:`~repro.workload.sizes` — heavy-tailed / lognormal / empirical
  / elephant-mice flow-size sources;
* :mod:`~repro.workload.generators` — incast storms, diurnal load
  modulation, user-count-weighted tenant matrices, and the
  :func:`~repro.workload.generators.arm_traffic` bridge from spec
  entries to armed generators;
* :func:`~repro.workload.spec.library` — the canned scenario set
  behind benchmark E16 and the CI smoke suite;
* :func:`~repro.workload.spec.to_check_scenario` — lowers a spec onto
  the ``repro.check`` fuzzer plane so invariant checking runs under
  realistic workloads.
"""

from repro.workload.generators import (
    DiurnalFlowGenerator,
    IncastGenerator,
    TenantMatrix,
    arm_traffic,
    ensure_sinks,
)
from repro.workload.runner import (
    WorkloadResult,
    run_suite,
    run_workload,
    suite_digest,
)
from repro.workload.sizes import (
    elephant_mice,
    empirical_sizes,
    fixed_sizes,
    lognormal_sizes,
    size_source_from_spec,
)
from repro.workload.spec import (
    WorkloadSpec,
    build_spec_topology,
    library,
    load_spec,
    to_check_scenario,
)

__all__ = [
    "DiurnalFlowGenerator",
    "IncastGenerator",
    "TenantMatrix",
    "WorkloadResult",
    "WorkloadSpec",
    "arm_traffic",
    "build_spec_topology",
    "elephant_mice",
    "empirical_sizes",
    "ensure_sinks",
    "fixed_sizes",
    "library",
    "load_spec",
    "lognormal_sizes",
    "run_suite",
    "run_workload",
    "size_source_from_spec",
    "suite_digest",
    "to_check_scenario",
]
