"""Scenario-grade traffic generators layered on the netem primitives.

Three shapes the base :mod:`repro.netem.traffic` families do not cover:

* :class:`IncastGenerator` — periodic fan-in storms (N senders fire at
  one aggregator simultaneously), the classic partition/aggregate
  pattern that stresses flow-table setup latency and queueing.
* :class:`DiurnalFlowGenerator` — Poisson arrivals thinned against a
  sinusoidal day curve, for carrier-WAN load that breathes.
* :class:`TenantMatrix` — a per-tenant traffic matrix whose weights
  come from *modelled user counts*, so a spec can say "tenant A has
  1.2 million users" and get a proportional, locality-biased share of
  a tractable aggregate flow rate.

:func:`arm_traffic` is the declarative bridge: one traffic-entry dict
from a :class:`~repro.workload.spec.WorkloadSpec` becomes one armed
generator, with flow sinks lazily installed on the destination port.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.netem.host import Host
from repro.netem.traffic import (
    CBRStream,
    FlowGenerator,
    FlowRecord,
    FlowSink,
    allocate_flow_id,
    send_framed_flow,
)
from repro.sim import Simulator
from repro.workload.sizes import size_source_from_spec

__all__ = [
    "DiurnalFlowGenerator",
    "IncastGenerator",
    "TenantMatrix",
    "arm_traffic",
    "ensure_sinks",
]


class IncastGenerator:
    """Periodic fan-in storms: ``fanin`` senders fire at one aggregator.

    Every ``period`` seconds a fresh subset of senders each start a
    framed flow of ``bytes_per_sender`` toward the aggregator at the
    same instant — the partition/aggregate burst that produces
    synchronized queue buildup and flow-table churn.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: List[Host],
        aggregator: Host,
        bytes_per_sender: int = 20_000,
        period: float = 1.0,
        fanin: Optional[int] = None,
        start: float = 0.0,
        duration: float = 10.0,
        flow_rate_bps: float = 10e6,
        packet_size: int = 1000,
        dst_port: int = 9000,
    ) -> None:
        senders = [h for h in senders if h is not aggregator]
        if not senders:
            raise TopologyError("incast needs at least one sender")
        if period <= 0:
            raise TopologyError(f"incast period must be positive: {period}")
        self.sim = sim
        self.senders = senders
        self.aggregator = aggregator
        self.bytes_per_sender = bytes_per_sender
        self.period = period
        self.fanin = min(fanin or len(senders), len(senders))
        self.flow_rate_bps = flow_rate_bps
        self.packet_size = packet_size
        self.dst_port = dst_port
        self.rng = sim.fork_rng()
        self.bursts = 0
        self.flows_started: List[FlowRecord] = []
        self._end_at = sim.now + start + duration
        self._next_src_port = 30000
        sim.schedule(start, self._burst)

    def _burst(self) -> None:
        if self.sim.now >= self._end_at:
            return
        self.bursts += 1
        for src in self.rng.sample(self.senders, self.fanin):
            flow_id = allocate_flow_id(self.sim)
            src_port = self._next_src_port
            self._next_src_port += 1
            if self._next_src_port > 60000:
                self._next_src_port = 30000
            record = FlowRecord(flow_id, src.name, self.aggregator.name,
                                self.bytes_per_sender, self.sim.now)
            self.flows_started.append(record)
            send_framed_flow(self.sim, src, self.aggregator.ip, flow_id,
                             self.bytes_per_sender, src_port, self.dst_port,
                             self.flow_rate_bps, self.packet_size)
        self.sim.schedule(self.period, self._burst)


class DiurnalFlowGenerator(FlowGenerator):
    """Poisson arrivals modulated by a sinusoidal diurnal curve.

    The parent schedules candidate arrivals at the *peak* rate; each is
    accepted with probability ``rate(t) / peak`` (Poisson thinning), so
    the accepted process is an inhomogeneous Poisson process with

    ``rate(t) = peak * (trough + (1 - trough) * 0.5 *
    (1 - cos(2 * pi * (t - phase) / period)))``

    ``trough`` is the floor as a fraction of peak (0.2 = nightly load
    is 20% of the daily maximum).
    """

    def __init__(self, *args, period: float = 86_400.0,
                 trough: float = 0.2, phase: float = 0.0,
                 **kwargs) -> None:
        if period <= 0:
            raise TopologyError(f"diurnal period must be positive: {period}")
        if not 0.0 <= trough <= 1.0:
            raise TopologyError(
                f"diurnal trough must be in [0, 1]: {trough}"
            )
        self.period = period
        self.trough = trough
        self.phase = phase
        self.accepted = 0
        self.thinned = 0
        super().__init__(*args, **kwargs)

    def rate_fraction(self, t: float) -> float:
        """Instantaneous rate as a fraction of peak, in [trough, 1]."""
        cycle = 0.5 * (1.0 - math.cos(
            2.0 * math.pi * (t - self.phase) / self.period))
        return self.trough + (1.0 - self.trough) * cycle

    def _arrival(self) -> None:
        if self.sim.now > self._end_at:
            return
        if self.rng.random() < self.rate_fraction(self.sim.now):
            self.accepted += 1
            self._spawn_flow()
        else:
            self.thinned += 1
        self.sim.schedule(self.rng.expovariate(self.arrival_rate),
                          self._arrival)


class TenantMatrix:
    """A user-count-weighted, locality-biased traffic matrix.

    ``tenants`` is a list of dicts: ``{"name": ..., "users": ...,
    "intra_weight": ...}``.  Hosts are partitioned among tenants in
    proportion to their user counts (largest-remainder, at least one
    host each); flow sources are drawn tenant-first (weighted by
    users), then the destination stays inside the tenant with
    probability ``intra_weight``.

    The matrix also converts "millions of modelled users" into a
    tractable simulated arrival rate: :meth:`aggregate_rate` multiplies
    the total user count by a per-user flow rate (default 2e-5 flows
    per user per second, i.e. one flow per user every ~14 hours of
    modelled activity).
    """

    def __init__(self, rng, hosts: List[Host], tenants: List[dict]) -> None:
        if not tenants:
            raise TopologyError("tenant matrix needs at least one tenant")
        if len(hosts) < 2 * len(tenants):
            raise TopologyError(
                f"{len(tenants)} tenants need >= {2 * len(tenants)} hosts, "
                f"got {len(hosts)}"
            )
        self.rng = rng
        self.tenants = tenants
        self.users = [float(t.get("users", 1.0)) for t in tenants]
        if min(self.users) <= 0:
            raise TopologyError("tenant user counts must be positive")
        self.total_users = sum(self.users)
        self.hosts_by_tenant = self._partition(hosts)
        self._cum_weights: List[float] = []
        acc = 0.0
        for users in self.users:
            acc += users / self.total_users
            self._cum_weights.append(acc)
        self._cum_weights[-1] = 1.0

    def _partition(self, hosts: List[Host]) -> List[List[Host]]:
        n = len(hosts)
        shares = [n * u / self.total_users for u in self.users]
        counts = [max(int(s), 2) for s in shares]
        while sum(counts) > n:
            counts[counts.index(max(counts))] -= 1
        remainders = sorted(
            range(len(shares)),
            key=lambda i: shares[i] - int(shares[i]),
            reverse=True,
        )
        i = 0
        while sum(counts) < n:
            counts[remainders[i % len(remainders)]] += 1
            i += 1
        out: List[List[Host]] = []
        cursor = 0
        for count in counts:
            out.append(hosts[cursor:cursor + count])
            cursor += count
        return out

    def aggregate_rate(self, flows_per_user_per_s: float = 2e-5) -> float:
        """Total flow arrival rate implied by the modelled user base."""
        return self.total_users * flows_per_user_per_s

    def pick(self) -> Tuple[Host, Host]:
        """Draw one (src, dst) pair; plugs into ``pair_picker``."""
        u = self.rng.random()
        idx = 0
        while u > self._cum_weights[idx]:
            idx += 1
        tenant = self.tenants[idx]
        pool = self.hosts_by_tenant[idx]
        src = self.rng.choice(pool)
        intra = float(tenant.get("intra_weight", 0.8))
        if self.rng.random() < intra or len(self.hosts_by_tenant) == 1:
            dst = self.rng.choice(pool)
            while dst is src:
                dst = self.rng.choice(pool)
            return src, dst
        others = [i for i in range(len(self.hosts_by_tenant)) if i != idx]
        dst_pool = self.hosts_by_tenant[self.rng.choice(others)]
        return src, self.rng.choice(dst_pool)


def ensure_sinks(hosts: List[Host], port: int,
                 registry: Dict[Tuple[str, int], FlowSink],
                 on_flow_complete=None) -> List[FlowSink]:
    """Install a :class:`FlowSink` per (host, port) at most once.

    Several traffic entries may target the same destination port;
    ``registry`` (owned by the caller, typically the runner) makes the
    bind idempotent.
    """
    sinks: List[FlowSink] = []
    for host in hosts:
        key = (host.name, port)
        sink = registry.get(key)
        if sink is None:
            sink = FlowSink(host, port)
            if on_flow_complete is not None:
                sink.on_flow_complete = on_flow_complete
            registry[key] = sink
        sinks.append(sink)
    return sinks


def arm_traffic(sim: Simulator, hosts: List[Host], entry: dict,
                sinks: Dict[Tuple[str, int], FlowSink],
                on_flow_complete=None,
                tenant_matrix: Optional[TenantMatrix] = None):
    """Arm one declarative traffic entry and return the generator.

    ``entry`` kinds (all times relative to *now*, i.e. spec time zero):

    * ``flows``   — Poisson :class:`FlowGenerator`; keys ``rate``,
      ``sizes`` (a size-spec dict), optional ``flow_rate_bps``,
      ``tenant_matrix: true`` to route via ``tenant_matrix``.
    * ``incast``  — :class:`IncastGenerator`; keys ``fanin``,
      ``bytes_per_sender``, ``period``.
    * ``diurnal`` — :class:`DiurnalFlowGenerator`; ``flows`` keys plus
      ``period``, ``trough``, ``phase``.  ``rate`` is the *peak* rate.
    * ``cbr``     — one :class:`CBRStream` between the first two hosts;
      keys ``rate_bps``, optional ``packet_size``.
    """
    kind = entry.get("kind", "flows")
    start = float(entry.get("start", 0.0))
    duration = float(entry.get("duration", 10.0))
    dst_port = int(entry.get("dst_port", 9000))

    if kind == "cbr":
        if len(hosts) < 2:
            raise TopologyError("cbr entry needs >= 2 hosts")
        ensure_sinks([hosts[1]], dst_port, sinks, on_flow_complete)
        return CBRStream(hosts[0], hosts[1].ip,
                         rate_bps=float(entry.get("rate_bps", 1e6)),
                         packet_size=int(entry.get("packet_size", 1000)),
                         start=start, duration=duration,
                         dst_port=dst_port)

    if kind == "incast":
        aggregator = hosts[-1]
        ensure_sinks([aggregator], dst_port, sinks, on_flow_complete)
        return IncastGenerator(
            sim, hosts[:-1], aggregator,
            bytes_per_sender=int(entry.get("bytes_per_sender", 20_000)),
            period=float(entry.get("period", 1.0)),
            fanin=entry.get("fanin"),
            start=start, duration=duration,
            flow_rate_bps=float(entry.get("flow_rate_bps", 10e6)),
            packet_size=int(entry.get("packet_size", 1000)),
            dst_port=dst_port,
        )

    if kind in ("flows", "diurnal"):
        ensure_sinks(hosts, dst_port, sinks, on_flow_complete)
        size_rng = sim.fork_rng()
        sizes = size_source_from_spec(
            size_rng, entry.get("sizes", {"dist": "pareto", "mean": 50_000}))
        pair_picker = None
        if entry.get("tenant_matrix"):
            if tenant_matrix is None:
                raise TopologyError(
                    "traffic entry requests tenant_matrix but the spec "
                    "declares no tenants"
                )
            pair_picker = tenant_matrix.pick
        rate = float(entry.get(
            "rate",
            tenant_matrix.aggregate_rate(
                float(entry.get("flows_per_user_per_s", 2e-5)))
            if (entry.get("tenant_matrix") and tenant_matrix is not None)
            else 10.0,
        ))
        common = dict(
            flow_rate_bps=float(entry.get("flow_rate_bps", 10e6)),
            packet_size=int(entry.get("packet_size", 1000)),
            dst_port=dst_port, pair_picker=pair_picker,
            start=start, duration=duration,
        )
        if kind == "diurnal":
            return DiurnalFlowGenerator(
                sim, hosts, rate, sizes,
                period=float(entry.get("period", 86_400.0)),
                trough=float(entry.get("trough", 0.2)),
                phase=float(entry.get("phase", 0.0)),
                **common,
            )
        return FlowGenerator(sim, hosts, rate, sizes, **common)

    raise TopologyError(f"unknown traffic kind {entry.get('kind')!r}")
