"""Run workload specs: one spec -> one wired, observed platform run.

:func:`run_workload` is the execution engine behind the ``workload``
CLI and benchmark E16: it builds the spec's topology, starts a
:class:`~repro.core.platform.ZenPlatform` with telemetry on, installs
flow sinks that feed a ``workload_fct_seconds`` histogram, arms every
traffic entry and fault, attaches the obs plane (stock SLOs plus the
spec's own), and returns a :class:`WorkloadResult` whose
:class:`~repro.obs.artifact.RunArtifact` plugs straight into
``repro obs diff`` and the dashboard.

:func:`run_suite` fans a list of specs across worker processes.
Workers return plain dicts (summaries + serialised artifacts); the
parent reconstructs and writes the artifacts, so the fan-out changes
wall-clock only — per-run digests are identical at any ``jobs``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.analysis import percentile
from repro.core import ZenPlatform
from repro.errors import TopologyError
from repro.faults import FaultSchedule
from repro.obs import ObsPlane, RunArtifact, default_slos, slo_from_spec
from repro.telemetry import Telemetry
from repro.workload.generators import TenantMatrix, arm_traffic
from repro.workload.spec import WorkloadSpec, build_spec_topology

__all__ = [
    "WorkloadResult",
    "run_suite",
    "run_workload",
    "suite_digest",
]


class WorkloadResult:
    """Outcome of one workload run: summary + obs artifact."""

    __slots__ = ("spec", "summary", "artifact")

    def __init__(self, spec: WorkloadSpec, summary: dict,
                 artifact: RunArtifact) -> None:
        self.spec = spec
        self.summary = summary
        self.artifact = artifact

    @property
    def ok(self) -> bool:
        return bool(self.summary.get("health_ok", False))

    @property
    def digest(self) -> str:
        """Stable digest of everything the run produced (bit-identity
        checks across re-runs and across suite worker counts)."""
        blob = json.dumps(
            {"summary": self.summary, "artifact": self.artifact.to_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "summary": self.summary,
            "artifact": self.artifact.to_dict(),
            "digest": self.digest,
        }

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else "ALERTS"
        return (f"<WorkloadResult {self.spec.name!r} "
                f"{self.summary.get('flows_completed', 0)} flows "
                f"{verdict}>")


def _arm_faults(spec: WorkloadSpec, schedule: FaultSchedule,
                base: float) -> None:
    for fault in spec.faults:
        kind = fault["kind"]
        at = base + fault["at"]
        if kind == "link_flap":
            schedule.link_flap(at, fault["a"], fault["b"],
                               down_for=fault["down_for"],
                               period=fault["period"],
                               count=fault["count"])
        elif kind == "channel_flap":
            schedule.channel_flap(at, fault["switch"],
                                  down_for=fault["down_for"],
                                  period=fault["period"],
                                  count=fault["count"])
        elif kind == "switch_crash":
            schedule.switch_crash(at, fault["switch"],
                                  restart_after=fault["restart_after"])
        else:
            raise TopologyError(f"unknown fault kind {kind!r}")


def run_workload(spec: WorkloadSpec,
                 out: Optional[str] = None,
                 shards: Optional[int] = None,
                 shard_processes: Optional[bool] = None):
    """Execute one spec end to end; deterministic in (spec, seed).

    With ``shards`` the run is delegated to the sharded kernel
    (:func:`repro.sim.shard.run_sharded`) and the return value is a
    :class:`~repro.sim.shard.ShardedResult` — a static-forwarding
    execution model whose merged observables are bit-identical at any
    shard count (``shards=1`` is the oracle).  Without ``shards`` the
    classic single-loop controller platform below runs unchanged.
    """
    if shards is not None:
        from repro.sim.shard import run_sharded

        return run_sharded(spec, shards=shards,
                           processes=shard_processes, out=out)
    topo = build_spec_topology(spec)
    platform = ZenPlatform(topo, profile=spec.profile, seed=spec.seed,
                           telemetry=Telemetry(profile=False))
    platform.start()
    net = platform.net
    sim = platform.sim

    # Static ARP everywhere: workloads measure the dataplane and the
    # control plane's flow handling, not address resolution.
    hosts = [net.hosts[n] for n in sorted(net.hosts)]
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)

    fcts: List[float] = []
    # Zero-label families come back as the bare metric.
    fct_hist = platform.telemetry.metrics.histogram(
        "workload_fct_seconds",
        "flow completion time measured at workload sinks",
    )

    def on_flow_complete(record) -> None:
        fcts.append(record.fct)
        fct_hist.observe(record.fct)

    slos = default_slos(spec.interval) + [slo_from_spec(doc)
                                          for doc in spec.slos]
    plane = ObsPlane(platform, interval=spec.interval, slos=slos)

    # Flow-table occupancy: scraped every tick, peak kept in-closure so
    # the summary does not depend on the ring-buffer capacity.
    peak = {"flow_entries": 0}

    def flow_entries() -> float:
        total = sum(dp.flow_count() for dp in net.switches.values())
        peak["flow_entries"] = max(peak["flow_entries"], total)
        return float(total)

    plane.scraper.probe("workload_flow_entries", flow_entries)

    schedule = FaultSchedule(net)
    plane.watch_faults(schedule)
    base = sim.now
    _arm_faults(spec, schedule, base)

    tenant_matrix = None
    if spec.tenants:
        tenant_matrix = TenantMatrix(sim.fork_rng(), hosts, spec.tenants)

    sinks: Dict[tuple, object] = {}
    generators = [
        arm_traffic(sim, hosts, entry, sinks,
                    on_flow_complete=on_flow_complete,
                    tenant_matrix=tenant_matrix)
        for entry in spec.traffic
    ]

    platform.run(spec.duration)
    plane.finish()

    flows_started = sum(len(getattr(g, "flows_started", ()))
                        for g in generators)
    flows_completed = sum(len(sink.completed_flows())
                          for sink in sinks.values())
    summary = {
        "name": spec.name,
        "seed": spec.seed,
        "duration": spec.duration,
        "flows_started": flows_started,
        "flows_completed": flows_completed,
        "fct_p50": percentile(fcts, 50) if fcts else None,
        "fct_p95": percentile(fcts, 95) if fcts else None,
        "fct_p99": percentile(fcts, 99) if fcts else None,
        "flow_table_peak": peak["flow_entries"],
        "faults_fired": len(schedule.log),
        "health_ok": plane.report.ok,
        "alerts": len(plane.report.alerts),
        "events": sim.events_processed,
    }
    artifact = plane.artifact(kind="workload", workload=spec.to_dict(),
                              summary=summary)
    if out:
        artifact.save(out)
    return WorkloadResult(spec, summary, artifact)


def _suite_worker(job: tuple) -> dict:
    """Pool target: run one spec, return plain picklable data.

    ``job`` is ``(spec_doc, shards)``; sharded suite runs use the
    in-process coordinator per spec (the pool already owns the
    process-level parallelism), which is bit-identical to the
    multiprocess engine anyway.
    """
    spec_doc, shards = job
    spec = WorkloadSpec.from_dict(spec_doc)
    if shards is not None:
        result = run_workload(spec, shards=shards, shard_processes=False)
    else:
        result = run_workload(spec)
    return result.to_dict()


def run_suite(specs: List[WorkloadSpec], jobs: int = 1,
              out_dir: Optional[str] = None,
              shards: Optional[int] = None) -> List[dict]:
    """Run a scenario suite, optionally across worker processes.

    Returns one result dict per spec (``WorkloadResult.to_dict`` form,
    or ``ShardedResult.to_dict`` when ``shards`` is given), in spec
    order regardless of worker scheduling.  With ``out_dir`` the parent
    (not the workers) writes ``<name>.json`` run artifacts there, so
    ``repro obs diff`` works on any pair of suite outputs.
    """
    jobs_in = [(spec.to_dict(), shards) for spec in specs]
    if jobs <= 1 or len(jobs_in) <= 1:
        results = [_suite_worker(job) for job in jobs_in]
    else:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(jobs_in))) as pool:
            results = pool.map(_suite_worker, jobs_in)
    if out_dir is not None:
        import os

        os.makedirs(out_dir, exist_ok=True)
        for entry in results:
            path = os.path.join(out_dir, f"{entry['name']}.json")
            if "artifact" in entry:
                RunArtifact.from_dict(entry["artifact"]).save(path)
            else:  # sharded run: the result document is the artifact
                with open(path, "w") as fh:
                    json.dump(entry, fh, indent=1, sort_keys=True)
                    fh.write("\n")
    return results


def suite_digest(results: List[dict]) -> str:
    """One digest over a suite's per-run digests (in suite order)."""
    blob = json.dumps([{"name": r["name"], "digest": r["digest"]}
                       for r in results])
    return hashlib.sha256(blob.encode()).hexdigest()
