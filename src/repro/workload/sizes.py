"""Flow-size sources for realistic traffic mixes.

Every source is an infinite generator of integer byte counts driven by
an injected ``random.Random`` — fork one per consumer with
:meth:`~repro.sim.kernel.Simulator.fork_rng` so adding a source never
perturbs another's stream.  :func:`size_source_from_spec` is the
declarative entry point the scenario plane uses: a small dict names a
distribution and its parameters.

Alongside the classic Pareto (``repro.netem.pareto_sizes``), this
module covers the shapes the SDN evaluation literature leans on:
lognormal service sizes, empirical CDFs lifted from traces, and the
canonical elephant/mice mixture (most flows tiny, most *bytes* in the
heavy tail).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.netem.traffic import pareto_sizes

__all__ = [
    "MIN_FLOW_BYTES",
    "elephant_mice",
    "empirical_sizes",
    "fixed_sizes",
    "lognormal_sizes",
    "size_source_from_spec",
]

#: Smallest flow any source emits (one header + a little payload).
MIN_FLOW_BYTES = 64


def fixed_sizes(size: int) -> Iterator[int]:
    """Every flow exactly ``size`` bytes (calibration workloads)."""
    if size < MIN_FLOW_BYTES:
        raise TopologyError(
            f"flow size must be >= {MIN_FLOW_BYTES}B: {size}"
        )
    return itertools.repeat(int(size))


def lognormal_sizes(rng, mean: float, sigma: float = 1.0) -> Iterator[int]:
    """Lognormal sizes with the given *linear-space* mean.

    ``sigma`` is the shape in log space; the location is solved so that
    ``E[size] == mean`` (mu = ln(mean) - sigma^2 / 2).
    """
    if mean <= 0:
        raise TopologyError(f"lognormal mean must be positive: {mean}")
    if sigma <= 0:
        raise TopologyError(f"lognormal sigma must be positive: {sigma}")
    mu = math.log(mean) - sigma * sigma / 2.0
    while True:
        yield max(int(rng.lognormvariate(mu, sigma)), MIN_FLOW_BYTES)


def empirical_sizes(rng,
                    cdf: Sequence[Tuple[float, float]]) -> Iterator[int]:
    """Inverse-CDF sampling from an empirical (size, cum_prob) table.

    ``cdf`` is a sequence of (size_bytes, cumulative_probability)
    points sorted by size, ending at probability 1.0 — the form flow
    traces are usually published in.  Draws interpolate linearly
    between neighbouring points.
    """
    points: List[Tuple[float, float]] = [(float(s), float(p))
                                         for s, p in cdf]
    if not points:
        raise TopologyError("empirical CDF needs at least one point")
    last_p = 0.0
    last_s = 0.0
    for size, prob in points:
        if size <= last_s and last_p > 0.0:
            raise TopologyError("empirical CDF sizes must increase")
        if prob < last_p:
            raise TopologyError("empirical CDF must be non-decreasing")
        last_s, last_p = size, prob
    if abs(points[-1][1] - 1.0) > 1e-9:
        raise TopologyError("empirical CDF must end at probability 1.0")
    while True:
        u = rng.random()
        prev_size, prev_p = points[0][0], 0.0
        drawn = points[-1][0]
        for size, prob in points:
            if u <= prob:
                if prob <= prev_p:
                    drawn = size
                else:
                    frac = (u - prev_p) / (prob - prev_p)
                    drawn = prev_size + (size - prev_size) * frac
                break
            prev_size, prev_p = size, prob
        yield max(int(drawn), MIN_FLOW_BYTES)


def elephant_mice(rng, mice_mean: float = 2_000,
                  elephant_mean: float = 200_000,
                  elephant_frac: float = 0.05,
                  shape: float = 1.2) -> Iterator[int]:
    """The canonical datacenter mixture: mostly mice, bytes in elephants.

    Each arrival is an elephant with probability ``elephant_frac``;
    class sizes are Pareto around the class mean, so the tail within
    each class stays heavy too.
    """
    if not 0.0 <= elephant_frac <= 1.0:
        raise TopologyError(
            f"elephant fraction must be in [0, 1]: {elephant_frac}"
        )
    mice = pareto_sizes(rng, mice_mean, shape)
    elephants = pareto_sizes(rng, elephant_mean, shape)
    while True:
        if rng.random() < elephant_frac:
            yield next(elephants)
        else:
            yield next(mice)


def size_source_from_spec(rng, spec: dict) -> Iterator[int]:
    """Build a size source from its declarative form.

    ``spec`` is ``{"dist": name, ...params}``; distributions:

    * ``pareto``     — ``mean``, optional ``shape`` (default 1.2)
    * ``lognormal``  — ``mean``, optional ``sigma`` (default 1.0)
    * ``empirical``  — ``cdf``: [[size, cum_prob], ...]
    * ``fixed``      — ``size``
    * ``mix``        — ``mice_mean``, ``elephant_mean``,
      ``elephant_frac``, optional ``shape``
    """
    dist = spec.get("dist", "pareto")
    if dist == "pareto":
        return pareto_sizes(rng, spec["mean"], spec.get("shape", 1.2))
    if dist == "lognormal":
        return lognormal_sizes(rng, spec["mean"], spec.get("sigma", 1.0))
    if dist == "empirical":
        return empirical_sizes(rng, [tuple(p) for p in spec["cdf"]])
    if dist == "fixed":
        return fixed_sizes(spec["size"])
    if dist == "mix":
        return elephant_mice(
            rng,
            mice_mean=spec.get("mice_mean", 2_000),
            elephant_mean=spec.get("elephant_mean", 200_000),
            elephant_frac=spec.get("elephant_frac", 0.05),
            shape=spec.get("shape", 1.2),
        )
    raise TopologyError(f"unknown size distribution {dist!r}")
