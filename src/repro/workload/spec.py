"""Declarative workload scenarios: one document, one wired run.

A :class:`WorkloadSpec` is a JSON/YAML-serialisable description of a
complete experiment — topology family and size, platform profile,
traffic mix (heavy-tailed flows, incast storms, diurnal load, tenant
matrices), fault schedule, extra SLOs, and the seed — that
:func:`~repro.workload.runner.run_workload` turns into a running
platform with the obs plane attached.  Specs are pure data: the same
document and seed reproduce the same run bit-for-bit.

:func:`library` ships the canned scenario set the E16 benchmark and the
CI smoke suite run; :func:`to_check_scenario` lowers a spec onto the
``repro.check`` fuzzer plane so the invariant checker and monitor work
on realistic workloads too.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.netem import Topology

__all__ = [
    "WorkloadSpec",
    "build_spec_topology",
    "library",
    "load_spec",
    "to_check_scenario",
]

SPEC_VERSION = 1


class WorkloadSpec:
    """One declarative scenario (see the module docstring).

    Fields
    ------
    topology:
        ``{"family": name, "size": n, "bandwidth": bps, "params": {...}}``
        — ``family`` is any :func:`repro.cli.build_topology` builder;
        ``params``, when present, are passed to the builder classmethod
        directly (carrier-WAN tier widths, for example).
    traffic:
        A list of entries for
        :func:`~repro.workload.generators.arm_traffic` (kinds ``flows``,
        ``incast``, ``diurnal``, ``cbr``), each with ``start`` and
        ``duration`` relative to spec time zero.
    tenants:
        Optional ``[{"name", "users", "intra_weight"}, ...]`` — enables
        ``"tenant_matrix": true`` traffic entries, with aggregate rates
        derived from the modelled user counts.
    faults:
        Fuzzer-style fault dicts (``link_flap``/``channel_flap``/
        ``switch_crash`` with ``at`` relative to spec time zero).
    slos:
        Extra objectives in :func:`repro.obs.slo_from_spec` form,
        evaluated alongside the stock set.
    """

    __slots__ = ("name", "seed", "duration", "interval", "topology",
                 "profile", "tenants", "traffic", "faults", "slos",
                 "settle")

    def __init__(self, name: str, topology: dict,
                 traffic: List[dict], seed: int = 0,
                 duration: Optional[float] = None,
                 interval: float = 0.1, profile: str = "proactive",
                 tenants: Optional[List[dict]] = None,
                 faults: Optional[List[dict]] = None,
                 slos: Optional[List[dict]] = None,
                 settle: float = 2.0) -> None:
        if not traffic:
            raise TopologyError(f"workload {name!r} declares no traffic")
        self.name = name
        self.seed = seed
        self.topology = dict(topology)
        self.profile = profile
        self.interval = interval
        self.tenants = list(tenants) if tenants else []
        self.traffic = [dict(entry) for entry in traffic]
        self.faults = list(faults) if faults else []
        self.slos = list(slos) if slos else []
        self.settle = settle
        self.duration = (duration if duration is not None
                         else self.horizon())

    def horizon(self) -> float:
        """Simulated seconds implied by the armed traffic and faults."""
        last = 1.0
        for entry in self.traffic:
            last = max(last, float(entry.get("start", 0.0))
                       + float(entry.get("duration", 10.0)))
        for fault in self.faults:
            if fault["kind"] in ("link_flap", "channel_flap"):
                # The k-th cycle goes down at ``at + k*period`` and
                # comes back ``down_for`` later, so the last recovery —
                # not ``at + count*period``, which overshoots by
                # ``period - down_for`` — bounds the schedule.
                last = max(last, fault["at"]
                           + (fault["count"] - 1) * fault["period"]
                           + fault["down_for"])
            else:  # switch_crash
                last = max(last, fault["at"] + fault["restart_after"])
        return last + self.settle

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "interval": self.interval,
            "topology": dict(self.topology),
            "profile": self.profile,
            "tenants": [dict(t) for t in self.tenants],
            "traffic": [dict(e) for e in self.traffic],
            "faults": [dict(f) for f in self.faults],
            "slos": [dict(s) for s in self.slos],
            "settle": self.settle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise TopologyError(
                f"unsupported workload spec version {version}"
            )
        return cls(
            name=data["name"],
            topology=data["topology"],
            traffic=data["traffic"],
            seed=data.get("seed", 0),
            duration=data.get("duration"),
            interval=data.get("interval", 0.1),
            profile=data.get("profile", "proactive"),
            tenants=data.get("tenants"),
            faults=data.get("faults"),
            slos=data.get("slos"),
            settle=data.get("settle", 2.0),
        )

    def __repr__(self) -> str:
        family = self.topology.get("family", "?")
        return (f"<WorkloadSpec {self.name!r} {family} "
                f"{len(self.traffic)} traffic entr"
                f"{'y' if len(self.traffic) == 1 else 'ies'} "
                f"seed={self.seed}>")


def load_spec(path: str) -> WorkloadSpec:
    """Load a spec document from a ``.json`` or ``.yaml`` file.

    YAML support is import-gated: it only needs PyYAML when the file
    actually is YAML, so the library keeps its zero-dependency core.
    """
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore[import-untyped]
        except ImportError as exc:  # pragma: no cover - env-specific
            raise TopologyError(
                "YAML specs need PyYAML installed; use JSON instead"
            ) from exc
        with open(path) as fh:
            return WorkloadSpec.from_dict(yaml.safe_load(fh))
    with open(path) as fh:
        return WorkloadSpec.from_dict(json.load(fh))


def build_spec_topology(spec: WorkloadSpec) -> Topology:
    """Instantiate the spec's topology.

    ``params`` (when given) call the builder classmethod directly;
    otherwise ``family``/``size``/``bandwidth`` go through the CLI's
    :func:`~repro.cli.build_topology` registry.
    """
    family = spec.topology.get("family", "fat_tree")
    params = spec.topology.get("params")
    if params:
        builder = getattr(Topology, family, None)
        if builder is None:
            raise TopologyError(f"unknown topology family {family!r}")
        return builder(**params)
    from repro.cli import build_topology

    return build_topology(family, int(spec.topology.get("size", 4)),
                          float(spec.topology.get("bandwidth", 1e9)))


def to_check_scenario(spec: WorkloadSpec):
    """Lower a workload spec onto the ``repro.check`` scenario plane.

    The returned :class:`~repro.check.fuzzer.Scenario` re-arms the
    spec's traffic entries (each gains ``"at"`` from its ``start``) and
    faults, so ``run_scenario`` checks invariants — and the monitor
    watches transients — under the realistic workload.
    """
    from repro.check.fuzzer import Scenario

    workload = []
    for entry in spec.traffic:
        doc = dict(entry)
        doc.setdefault("kind", "flows")
        doc["at"] = float(doc.pop("start", 0.0))
        workload.append(doc)
    return Scenario(
        seed=spec.seed,
        name=f"workload-{spec.name}",
        topology=spec.topology.get("family", "fat_tree"),
        size=int(spec.topology.get("size", 4)),
        profile=spec.profile,
        workload=workload,
        faults=[dict(f) for f in spec.faults],
        settle=max(spec.settle, 2.0),
    )


def library() -> Dict[str, WorkloadSpec]:
    """The canned scenario set (benchmark E16 and the CI smoke suite).

    Three families, one per stressor class:

    * ``dc-heavy-tail`` — fat-tree datacenter under an elephant/mice
      Poisson mix; tail FCT and flow-table occupancy.
    * ``incast-storm``  — periodic partition/aggregate fan-in bursts at
      one aggregator; synchronized table churn and queueing.
    * ``wan-diurnal``   — carrier WAN breathing through a (compressed)
      day curve with a mid-run link flap.
    * ``tenant-millions`` — per-tenant matrices whose aggregate arrival
      rate derives from ~2.4 million modelled users.
    """
    specs = [
        WorkloadSpec(
            "dc-heavy-tail",
            topology={"family": "fat_tree", "size": 4},
            profile="proactive",
            seed=16,
            traffic=[{
                "kind": "flows",
                "rate": 40.0,
                "sizes": {"dist": "mix", "mice_mean": 2_000,
                          "elephant_mean": 120_000,
                          "elephant_frac": 0.05},
                "start": 0.5,
                "duration": 5.0,
            }],
            slos=[{
                "kind": "series", "name": "workload-fct-p99",
                "series": "workload_fct_seconds", "threshold": 1.0,
                "signal": "quantile", "q": 0.99, "window": 2.0,
                "prefix": True, "for_s": 1.0, "severity": "ticket",
                "description": "p99 flow completion time stays sane",
            }],
        ),
        WorkloadSpec(
            "incast-storm",
            topology={"family": "fat_tree", "size": 4},
            profile="proactive",
            seed=17,
            traffic=[{
                "kind": "incast",
                "fanin": 8,
                "bytes_per_sender": 30_000,
                "period": 1.0,
                "start": 0.5,
                "duration": 4.0,
            }],
        ),
        WorkloadSpec(
            "wan-diurnal",
            topology={"family": "carrier_wan",
                      "params": {"cores": 3, "metros_per_core": 1,
                                 "access_per_metro": 1,
                                 "hosts_per_access": 2}},
            profile="proactive",
            seed=18,
            traffic=[{
                "kind": "diurnal",
                "rate": 30.0,
                "period": 4.0,   # one "day" compressed into 4 sim-s
                "trough": 0.2,
                "sizes": {"dist": "lognormal", "mean": 20_000,
                          "sigma": 1.0},
                "start": 0.5,
                "duration": 5.0,
            }],
            faults=[{
                "kind": "link_flap", "a": "core0", "b": "core1",
                "at": 2.5, "down_for": 0.4, "period": 1.2, "count": 1,
            }],
        ),
        WorkloadSpec(
            "tenant-millions",
            topology={"family": "fat_tree", "size": 4},
            profile="proactive",
            seed=19,
            tenants=[
                {"name": "anchor", "users": 1_200_000,
                 "intra_weight": 0.85},
                {"name": "longtail", "users": 800_000,
                 "intra_weight": 0.7},
                {"name": "enterprise", "users": 400_000,
                 "intra_weight": 0.9},
            ],
            traffic=[{
                "kind": "flows",
                "tenant_matrix": True,
                "flows_per_user_per_s": 2e-5,  # -> 48 flows/s aggregate
                "sizes": {"dist": "pareto", "mean": 20_000},
                "start": 0.5,
                "duration": 4.0,
            }],
        ),
    ]
    return {spec.name: spec for spec in specs}
