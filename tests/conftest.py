"""Shared fixtures: assembled platform stacks on standard topologies."""

import pytest

from repro.core import ZenPlatform
from repro.netem import Topology


def build_platform(topology, profile="proactive", warmup=True, **kw):
    platform = ZenPlatform(topology, profile=profile, **kw)
    if warmup:
        platform.start()
    return platform


@pytest.fixture
def linear3():
    """Proactive platform on a 3-switch chain, discovery settled."""
    return build_platform(
        Topology.linear(3, hosts_per_switch=1, bandwidth_bps=1e9)
    )


@pytest.fixture
def ring4():
    """Proactive platform on a 4-switch ring (redundant paths)."""
    return build_platform(
        Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
    )
