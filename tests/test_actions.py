"""Action primitive tests: rewrites, VLAN surgery, TTL, executor."""

import pytest

from repro.dataplane import (
    DecTTL,
    Group,
    Meter,
    Output,
    PopVLAN,
    PushVLAN,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
    TTLExpired,
    apply_actions,
)
from repro.errors import DataplaneError
from repro.packet import Ethernet, EtherType, IPv4, Packet, TCP, UDP, VLAN


def sample():
    return (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
            / IPv4(src="10.0.0.1", dst="10.0.0.2", ttl=5)
            / UDP(src_port=1, dst_port=2) / b"payload")


class TestRewrites:
    def test_set_eth_fields(self):
        pkt = sample()
        SetEthSrc("00:00:00:00:00:aa").apply(pkt)
        SetEthDst("00:00:00:00:00:bb").apply(pkt)
        assert pkt[Ethernet].src == "00:00:00:00:00:aa"
        assert pkt[Ethernet].dst == "00:00:00:00:00:bb"

    def test_set_ip_fields(self):
        pkt = sample()
        SetIPSrc("1.1.1.1").apply(pkt)
        SetIPDst("2.2.2.2").apply(pkt)
        assert pkt[IPv4].src == "1.1.1.1"
        assert pkt[IPv4].dst == "2.2.2.2"

    def test_set_l4_fields_udp_and_tcp(self):
        pkt = sample()
        SetL4Src(7777).apply(pkt)
        SetL4Dst(8888).apply(pkt)
        assert (pkt[UDP].src_port, pkt[UDP].dst_port) == (7777, 8888)
        tcp_pkt = Ethernet() / IPv4() / TCP(src_port=1, dst_port=2) / b""
        SetL4Dst(443).apply(tcp_pkt)
        assert tcp_pkt[TCP].dst_port == 443

    def test_set_dscp(self):
        pkt = sample()
        SetDSCP(46).apply(pkt)
        assert pkt[IPv4].dscp == 46

    def test_rewrites_on_wrong_packet_raise(self):
        arp_ish = Ethernet() / b""
        with pytest.raises(DataplaneError):
            SetIPDst("1.1.1.1").apply(arp_ish)
        with pytest.raises(DataplaneError):
            SetL4Dst(1).apply(Ethernet() / IPv4() / b"")

    def test_validation(self):
        with pytest.raises(DataplaneError):
            SetDSCP(64)
        with pytest.raises(DataplaneError):
            SetL4Src(65536)
        with pytest.raises(DataplaneError):
            Output(-1)


class TestVLANSurgery:
    def test_push_then_pop_is_identity(self):
        pkt = sample()
        before = pkt.encode()
        PushVLAN(100, pcp=3).apply(pkt)
        assert pkt[VLAN].vid == 100
        assert pkt[Ethernet].ethertype == EtherType.VLAN
        assert pkt[VLAN].ethertype == EtherType.IPV4
        PopVLAN().apply(pkt)
        assert VLAN not in pkt
        assert pkt.encode() == before

    def test_pushed_frame_decodes(self):
        pkt = sample()
        PushVLAN(42).apply(pkt)
        out = Packet.decode(pkt.encode())
        assert out[VLAN].vid == 42
        assert IPv4 in out

    def test_set_vlan_rewrites_vid(self):
        pkt = sample()
        PushVLAN(10).apply(pkt)
        SetVLAN(20).apply(pkt)
        assert pkt[VLAN].vid == 20

    def test_pop_without_tag_raises(self):
        with pytest.raises(DataplaneError):
            PopVLAN().apply(sample())


class TestTTL:
    def test_dec_ttl(self):
        pkt = sample()
        DecTTL().apply(pkt)
        assert pkt[IPv4].ttl == 4

    def test_expiry_raises(self):
        pkt = sample()
        pkt[IPv4].ttl = 1
        with pytest.raises(TTLExpired):
            DecTTL().apply(pkt)


class TestExecutor:
    def test_apply_actions_does_not_mutate_original(self):
        pkt = sample()
        rewritten, outs, groups, meters = apply_actions(
            [SetIPDst("9.9.9.9"), Output(3)], pkt
        )
        assert pkt[IPv4].dst == "10.0.0.2"
        assert rewritten[IPv4].dst == "9.9.9.9"
        assert outs == [3]
        assert groups == meters == []

    def test_collects_groups_and_meters(self):
        _, outs, groups, meters = apply_actions(
            [Meter(5), Group(7), Output(1), Output(2)], sample()
        )
        assert outs == [1, 2]
        assert groups == [7]
        assert meters == [5]

    def test_action_value_semantics(self):
        assert Output(3) == Output(3)
        assert Output(3) != Output(4)
        assert SetIPDst("1.1.1.1") == SetIPDst("1.1.1.1")
        assert len({Output(3), Output(3), Output(4)}) == 2
