"""Adaptive TE: measurement-driven placement convergence."""

import pytest

from repro.apps import AdaptiveTE, Demand, TrafficEngineering
from repro.core import ZenPlatform
from repro.errors import ControllerError
from repro.netem import CBRStream, FlowSink, Topology


def diamond_platform():
    """h1 -- s1 ={s2,s3}= s4 -- h2/h3: two 10 Mb/s arms."""
    topo = Topology()
    for _ in range(4):
        topo.add_switch()
    topo.add_link("s1", "s2", bandwidth_bps=10e6)
    topo.add_link("s2", "s4", bandwidth_bps=10e6)
    topo.add_link("s1", "s3", bandwidth_bps=10e6)
    topo.add_link("s3", "s4", bandwidth_bps=10e6)
    for name, switch in (("h1", "s1"), ("h4", "s1"),
                         ("h2", "s4"), ("h3", "s4")):
        topo.add_link(topo.add_host(name), switch,
                      bandwidth_bps=100e6)
    platform = ZenPlatform(topo, profile="proactive")
    platform.te = platform.add_app(TrafficEngineering(
        default_capacity_bps=10e6, strategy="greedy", admit_all=True,
    ))
    platform.adaptive = platform.add_app(AdaptiveTE(interval=0.5))
    platform.start()
    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, h in enumerate(hosts):
        h.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"w")
    platform.run(1.5)
    return platform


class TestMeasurement:
    def test_measured_rates_track_reality(self):
        platform = diamond_platform()
        h1, h2 = platform.host("h1"), platform.host("h2")
        platform.te.install([Demand(h1.ip, h2.ip, 1e6)])  # declared 1M
        FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=6e6, packet_size=1000,
                  duration=6.0)  # actually 6M
        platform.run(5.0)
        measured = platform.adaptive.measured_rate(h1.ip, h2.ip)
        assert measured == pytest.approx(6e6, rel=0.2)

    def test_replaces_when_declared_rates_are_wrong(self):
        platform = diamond_platform()
        h1, h4 = platform.host("h1"), platform.host("h4")
        h2, h3 = platform.host("h2"), platform.host("h3")
        # Declared: both tiny -> greedy may pack them on one arm.
        platform.te.install([
            Demand(h1.ip, h2.ip, 0.2e6),
            Demand(h4.ip, h3.ip, 0.2e6),
        ])
        platform.run(0.2)
        # Reality: both are 7 Mb/s elephants — together they exceed one
        # 10 Mb/s arm and MUST be split.
        FlowSink(h2, 9000)
        FlowSink(h3, 9000)
        CBRStream(h1, h2.ip, rate_bps=7e6, packet_size=1000,
                  duration=12.0)
        CBRStream(h4, h3.ip, rate_bps=7e6, packet_size=1000,
                  duration=12.0)
        platform.run(8.0)
        assert platform.adaptive.replacements >= 1
        result = platform.te.last_result
        paths = [p for p in result.paths.values() if p]
        assert len(paths) == 2
        # After adaptation the two elephants use different arms.
        arms = {tuple(p[1:-1]) for p in paths}
        assert len(arms) == 2, paths
        # And the adopted demand rates reflect reality.
        for demand in platform.te.demands:
            assert demand.rate_bps == pytest.approx(7e6, rel=0.35)

    def test_no_replacement_when_declared_is_accurate(self):
        platform = diamond_platform()
        h1, h2 = platform.host("h1"), platform.host("h2")
        platform.te.install([Demand(h1.ip, h2.ip, 5e6)])
        FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=5e6, packet_size=1000,
                  duration=6.0)
        platform.run(5.0)
        assert platform.adaptive.replacements == 0

    def test_requires_te_app(self):
        platform = ZenPlatform(Topology.single(2), profile="bare")
        with pytest.raises(ControllerError):
            platform.add_app(AdaptiveTE())

    def test_stop_halts_polling(self):
        platform = diamond_platform()
        h1, h2 = platform.host("h1"), platform.host("h2")
        platform.te.install([Demand(h1.ip, h2.ip, 1e6)])
        platform.run(1.0)
        platform.adaptive.stop()
        samples = dict(platform.adaptive._last_sample)
        platform.run(2.0)
        assert platform.adaptive._last_sample == samples
