"""Unit and property tests for MAC/IPv4 address types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.packet import BROADCAST_MAC, IPv4Address, IPv4Network, MACAddress


class TestMACAddress:
    def test_parse_colon_string(self):
        mac = MACAddress("00:11:22:33:44:55")
        assert mac.value == 0x001122334455

    def test_parse_dash_string(self):
        assert MACAddress("00-11-22-33-44-55") == MACAddress(
            "00:11:22:33:44:55"
        )

    def test_roundtrip_via_bytes(self):
        mac = MACAddress("de:ad:be:ef:00:01")
        assert MACAddress(mac.packed()) == mac

    def test_str_is_canonical(self):
        assert str(MACAddress("DE:AD:BE:EF:00:01")) == "de:ad:be:ef:00:01"

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not MACAddress("00:11:22:33:44:55").is_broadcast

    def test_multicast_detection(self):
        assert MACAddress("01:80:c2:00:00:0e").is_multicast
        assert not MACAddress("02:80:c2:00:00:0e").is_multicast

    def test_local_macs_are_distinct_and_unicast(self):
        macs = {MACAddress.local(i) for i in range(100)}
        assert len(macs) == 100
        assert all(not m.is_multicast for m in macs)

    @pytest.mark.parametrize("bad", [
        "00:11:22:33:44", "00:11:22:33:44:55:66", "0g:11:22:33:44:55",
        "", "hello",
    ])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(AddressError):
            MACAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(1 << 48)
        with pytest.raises(AddressError):
            MACAddress(-1)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(b"\x00" * 5)

    def test_equality_with_string(self):
        assert MACAddress("00:11:22:33:44:55") == "00:11:22:33:44:55"
        assert MACAddress("00:11:22:33:44:55") != "00:11:22:33:44:56"

    def test_hashable_and_usable_as_dict_key(self):
        table = {MACAddress("00:00:00:00:00:01"): 5}
        assert table[MACAddress("00:00:00:00:00:01")] == 5

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_roundtrip_property(self, value):
        mac = MACAddress(value)
        assert MACAddress(str(mac)).value == value
        assert MACAddress(mac.packed()).value == value


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address("10.0.0.1").value == 0x0A000001

    def test_str_roundtrip(self):
        assert str(IPv4Address("192.168.1.200")) == "192.168.1.200"

    def test_packed_roundtrip(self):
        ip = IPv4Address("172.16.254.3")
        assert IPv4Address(ip.packed()) == ip

    @pytest.mark.parametrize("bad", [
        "10.0.0", "10.0.0.0.1", "10.0.0.256", "10.0.0.-1", "a.b.c.d",
        "10.0.0.01",  # leading zero
        "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_broadcast_and_multicast(self):
        assert IPv4Address("255.255.255.255").is_broadcast
        assert IPv4Address("224.0.0.1").is_multicast
        assert not IPv4Address("10.0.0.1").is_multicast

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_int_roundtrip_property(self, value):
        ip = IPv4Address(value)
        assert IPv4Address(str(ip)).value == value


class TestIPv4Network:
    def test_parse_cidr(self):
        net = IPv4Network("10.1.2.3/24")
        assert str(net) == "10.1.2.0/24"  # host bits zeroed
        assert net.prefix_len == 24

    def test_contains(self):
        net = IPv4Network("10.0.0.0/8")
        assert net.contains("10.255.255.255")
        assert not net.contains("11.0.0.0")

    def test_zero_prefix_contains_everything(self):
        net = IPv4Network("0.0.0.0/0")
        assert net.contains("1.2.3.4")
        assert net.contains("255.255.255.255")

    def test_slash32_is_exact(self):
        net = IPv4Network("10.0.0.1/32")
        assert net.contains("10.0.0.1")
        assert not net.contains("10.0.0.2")

    def test_netmask_and_broadcast(self):
        net = IPv4Network("192.168.1.0/24")
        assert str(net.netmask) == "255.255.255.0"
        assert str(net.broadcast) == "192.168.1.255"

    def test_hosts_enumeration(self):
        net = IPv4Network("10.0.0.0/30")
        assert [str(h) for h in net.hosts()] == ["10.0.0.1", "10.0.0.2"]

    def test_host_index_bounds(self):
        net = IPv4Network("10.0.0.0/30")
        with pytest.raises(AddressError):
            net.host(0)
        with pytest.raises(AddressError):
            net.host(3)

    def test_bad_prefix_rejected(self):
        with pytest.raises(AddressError):
            IPv4Network("10.0.0.0/33")
        with pytest.raises(AddressError):
            IPv4Network("10.0.0.0/x")
        with pytest.raises(AddressError):
            IPv4Network("10.0.0.0")  # missing prefix length

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=32))
    def test_network_contains_its_own_address(self, value, prefix):
        net = IPv4Network(str(IPv4Address(value)), prefix)
        assert net.contains(net.address)
        assert net.contains(net.broadcast)
