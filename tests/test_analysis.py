"""Statistics helpers and report rendering."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    Series,
    Table,
    jain_fairness,
    mean,
    median,
    percentile,
    stddev,
    summarise,
)


class TestStats:
    def test_mean_median(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert median([1, 2, 3]) == 2
        assert median([1, 2, 3, 4]) == 2.5

    def test_empty_inputs_are_nan(self):
        assert math.isnan(mean([]))
        assert math.isnan(percentile([], 50))
        assert math.isnan(summarise([])["p99"])

    def test_percentile_interpolation(self):
        data = [0, 10]
        assert percentile(data, 0) == 0
        assert percentile(data, 50) == 5
        assert percentile(data, 100) == 10
        assert percentile([7], 99) == 7

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, rel=0.01)
        assert stddev([5]) == 0.0

    def test_jain_fairness(self):
        assert jain_fairness([10, 10, 10]) == pytest.approx(1.0)
        assert jain_fairness([30, 0, 0]) == pytest.approx(1 / 3)
        assert jain_fairness([0, 0]) == 1.0

    def test_summarise_shape(self):
        summary = summarise(range(100))
        assert summary["count"] == 100
        assert summary["min"] == 0
        assert summary["max"] == 99
        assert summary["p50"] == pytest.approx(49.5)
        assert summary["p99"] == pytest.approx(98.01)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_percentiles_are_monotone(self, values):
        ps = [percentile(values, p) for p in (0, 25, 50, 75, 100)]
        assert ps == sorted(ps)
        assert ps[0] == min(values)
        assert ps[-1] == max(values)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6),
                    min_size=1, max_size=50))
    def test_jain_in_unit_interval(self, values):
        f = jain_fairness(values)
        assert 0 < f <= 1.0 + 1e-9


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 123456.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert len({len(line) for line in lines[2:]}) <= 2  # same width

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_cell_formatting(self):
        table = Table("T", ["x"])
        table.add_row(None)
        table.add_row(float("nan"))
        table.add_row(0.000123)
        table.add_row(1234567.0)
        table.add_row(3.14159)
        col = [r["x"] for r in table.as_dicts()]
        assert col[0] == "-"
        assert col[1] == "nan"
        assert col[2] == "0.000123"
        assert "e+06" in col[3] or "1.23" in col[3]
        assert col[4].startswith("3.14")

    def test_series_is_a_table_with_x_axis(self):
        series = Series("Fig 1", "load", ["reactive", "proactive"])
        series.add_point(0.1, 5.0, 1.0)
        series.add_point(0.2, 9.0, 1.0)
        assert series.x_label == "load"
        assert len(series.rows) == 2
        assert series.columns == ["load", "reactive", "proactive"]
