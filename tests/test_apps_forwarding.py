"""Hub, learning switch, and proactive router app tests."""


from repro.apps import HubApp, LearningSwitch
from repro.controller import Controller
from repro.core import ZenPlatform
from repro.netem import Network, Topology


def reactive(topology, **kw):
    return ZenPlatform(topology, profile="reactive", **kw).start()


class TestHub:
    def test_connectivity_without_any_flows(self):
        net = Network(Topology.single(3))
        controller = Controller(net.sim)
        hub = controller.add_app(HubApp())
        for name in net.switches:
            channel = net.make_channel(name)
            controller.accept_channel(channel)
            channel.connect()
        net.run(0.5)
        assert net.ping_all(count=1, settle=3.0) == 1.0
        assert net.switch("s1").flow_count() == 0
        assert hub.packets_flooded > 0

    def test_every_packet_visits_controller(self):
        net = Network(Topology.single(2))
        controller = Controller(net.sim)
        controller.add_app(HubApp())
        for name in net.switches:
            channel = net.make_channel(name)
            controller.accept_channel(channel)
            channel.connect()
        net.run(0.5)
        h1, h2 = net.host("h1"), net.host("h2")
        session = h1.ping(h2.ip, count=5, interval=0.1)
        net.run(5.0)
        assert session.received == 5
        # ARP req+rep + 5×(echo+reply) = at least 12 punts.
        assert net.switch("s1").packets_to_controller >= 12


class TestLearningSwitch:
    def test_connectivity_and_learning(self):
        platform = reactive(Topology.linear(3, hosts_per_switch=1,
                                            bandwidth_bps=1e9))
        assert platform.ping_all(count=2, settle=5.0) == 1.0
        app = platform.learning
        # Every switch learned both endpoint MACs of the traffic it saw.
        h1 = platform.host("h1")
        s1 = platform.switch("s1").dpid
        assert app.lookup(s1, h1.mac) == platform.net.port_of("s1", "h1")

    def test_flows_installed_cut_controller_out(self):
        platform = reactive(Topology.single(2, bandwidth_bps=1e9))
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.ping(h2.ip, count=1)
        platform.run(3.0)
        punts_after_first = platform.switch("s1").packets_to_controller
        again = h1.ping(h2.ip, count=5, interval=0.01)
        platform.run(3.0)
        assert again.received == 5
        # Steady state: echo traffic rides installed flows.
        assert (platform.switch("s1").packets_to_controller
                <= punts_after_first + 2)

    def test_exact_match_mode_installs_microflows(self):
        platform = ZenPlatform(
            Topology.single(2, bandwidth_bps=1e9),
            profile="reactive", exact_match=True,
        ).start()
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.add_static_arp(h2.ip, h2.mac)
        h2.add_static_arp(h1.ip, h1.mac)
        # h2 must be heard from once before its location is learnable.
        h2.send_udp(h1.ip, 4000, 9000, b"hello")
        platform.run(1.0)
        for port in (5001, 5002, 5003):
            h1.send_udp(h2.ip, port, 9000, b"x")
        platform.run(2.0)
        dp = platform.switch("s1")
        # One rule per distinct 5-tuple direction (plus none for dst-only).
        microflows = [
            e for t in dp.tables for e in t
            if "l4_src" in e.match
        ]
        assert len(microflows) == 3

    def test_unlearning_on_port_down(self):
        platform = reactive(Topology.linear(2, hosts_per_switch=1,
                                            bandwidth_bps=1e9))
        platform.ping_all(count=1, settle=3.0)
        app = platform.learning
        s1 = platform.switch("s1").dpid
        h2 = platform.host("h2")
        trunk = platform.net.port_of("s1", "s2")
        assert app.lookup(s1, h2.mac) == trunk
        platform.fail_link("s1", "s2")
        platform.run(0.5)
        assert app.lookup(s1, h2.mac) == -1

    def test_flows_idle_out(self):
        platform = ZenPlatform(
            Topology.single(2, bandwidth_bps=1e9), profile="reactive",
        ).start()
        platform.ping_all(count=1, settle=3.0)
        dp = platform.switch("s1")
        learned = [e for t in dp.tables for e in t if e.priority == 100]
        assert learned
        platform.run(15.0)  # default idle timeout is 10 s
        learned = [e for t in dp.tables for e in t if e.priority == 100]
        assert not learned


class TestProactiveRouter:
    def test_all_pairs_on_redundant_topology(self):
        platform = ZenPlatform(
            Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        assert platform.ping_all(count=2, settle=5.0) == 1.0

    def test_rules_are_proactive(self):
        platform = ZenPlatform(
            Topology.linear(3, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        h1, h3 = platform.host("h1"), platform.host("h3")
        # Prime host discovery with one exchange.
        h1.ping(h3.ip, count=1)
        platform.run(3.0)
        router = platform.router
        # Every switch must now hold a rule for both hosts.
        assert router.rules_installed == 2 * 3
        # Steady state: the only packet-ins are LLDP discovery probes.
        from repro.controller import PacketInEvent
        from repro.packet import LLDP

        data_punts = []
        platform.controller.subscribe(
            PacketInEvent,
            lambda ev: data_punts.append(ev)
            if ev.packet.get(LLDP) is None else None,
        )
        session = h1.ping(h3.ip, count=5, interval=0.05)
        platform.run(3.0)
        assert session.received == 5
        assert data_punts == []  # zero controller involvement

    def test_reroute_after_link_failure(self):
        platform = ZenPlatform(
            Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        h1, h2 = platform.host("h1"), platform.host("h2")
        warm = h1.ping(h2.ip, count=1)
        platform.run(3.0)
        assert warm.received == 1
        platform.fail_link("s1", "s2")
        platform.run(1.0)  # port-down -> LinkVanished -> rebuild
        session = h1.ping(h2.ip, count=3, interval=0.1)
        platform.run(5.0)
        assert session.received == 3

    def test_flood_ports_form_a_tree(self):
        platform = ZenPlatform(
            Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        router = platform.router
        graph = platform.discovery.graph()
        # Sum of inter-switch flood ports across the ring must be
        # 2 × (n-1) = 6 (a tree), not 8 (the full cycle).
        inter_switch = 0
        for name, dp in platform.net.switches.items():
            ports = router.flood_ports(dp.dpid)
            inter_switch += len(
                ports & platform.discovery.switch_ports_in_use(dp.dpid)
            )
        assert inter_switch == 2 * (graph.number_of_nodes() - 1)

    def test_broadcast_does_not_storm_on_ring(self):
        platform = ZenPlatform(
            Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        h1 = platform.host("h1")
        before = sum(dp.packets_received
                     for dp in platform.net.switches.values())
        # ARP for a nonexistent IP: pure broadcast, never answered.
        h1.send_udp("10.9.9.9", 1, 2, b"x")
        platform.run(5.0)
        after = sum(dp.packets_received
                    for dp in platform.net.switches.values())
        # 3 ARP retries over a 4-switch tree: bounded, not exponential
        # (LLDP probes continue in the background; allow generous slack).
        assert after - before < 120
