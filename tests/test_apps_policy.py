"""Firewall, load balancer, and slicing app tests."""

import pytest

from repro.apps import Firewall, LoadBalancer, NetworkSlicing
from repro.core import ZenPlatform
from repro.dataplane import FlowKey
from repro.errors import ControllerError
from repro.netem import CBRStream, FlowSink, RequestLoad, Topology
from repro.packet import Ethernet, IPv4, UDP


def make_platform(topology=None, **kw):
    """Proactive platform with the forwarding table moved to table 1 so a
    policy app can own table 0."""
    if topology is None:
        topology = Topology.single(3, bandwidth_bps=1e9)
    platform = ZenPlatform(topology, profile="bare", **kw)
    from repro.apps import ProactiveRouter

    platform.router = platform.add_app(ProactiveRouter(table_id=1))
    return platform


class TestFirewall:
    def build(self):
        platform = make_platform()
        firewall = platform.add_app(Firewall(table_id=0, next_table=1))
        platform.start()
        return platform, firewall

    def test_default_allow_forwards(self):
        platform, firewall = self.build()
        assert platform.ping_all(count=1, settle=3.0) == 1.0

    def test_deny_rule_blocks_matching_traffic(self):
        platform, firewall = self.build()
        h1, h2, h3 = (platform.host(n) for n in ("h1", "h2", "h3"))
        warm = platform.ping_all(count=1, settle=3.0)
        assert warm == 1.0
        firewall.deny(ip_src=str(h1.ip), ip_dst=str(h2.ip),
                      eth_type=0x0800)
        platform.run(0.5)
        blocked = h1.ping(h2.ip, count=2, interval=0.1, timeout=1.0)
        allowed = h1.ping(h3.ip, count=2, interval=0.1, timeout=1.0)
        platform.run(4.0)
        assert blocked.received == 0
        assert allowed.received == 2

    def test_allow_overrides_wider_deny(self):
        platform, firewall = self.build()
        h1, h2 = platform.host("h1"), platform.host("h2")
        platform.ping_all(count=1, settle=3.0)
        firewall.deny(priority=100, ip_src=str(h1.ip), eth_type=0x0800)
        firewall.allow(priority=200, ip_src=str(h1.ip),
                       ip_dst=str(h2.ip), eth_type=0x0800)
        platform.run(0.5)
        ok = h1.ping(h2.ip, count=2, interval=0.1, timeout=1.0)
        nok = h1.ping(platform.host("h3").ip, count=2, interval=0.1,
                      timeout=1.0)
        platform.run(4.0)
        assert ok.received == 2
        assert nok.received == 0

    def test_remove_rule_restores_traffic(self):
        platform, firewall = self.build()
        h1, h2 = platform.host("h1"), platform.host("h2")
        platform.ping_all(count=1, settle=3.0)
        rule = firewall.deny(ip_src=str(h1.ip), eth_type=0x0800)
        platform.run(0.5)
        firewall.remove_rule(rule.rule_id)
        platform.run(0.5)
        session = h1.ping(h2.ip, count=2, interval=0.1)
        platform.run(3.0)
        assert session.received == 2
        with pytest.raises(ControllerError):
            firewall.remove_rule(rule.rule_id)

    def test_default_deny_mode(self):
        platform = make_platform()
        platform.add_app(
            Firewall(table_id=0, next_table=1, default_allow=False)
        )
        platform.start()
        h1, h2 = platform.host("h1"), platform.host("h2")
        session = h1.ping(h2.ip, count=1, timeout=1.0)
        platform.run(3.0)
        assert session.received == 0

    def test_evaluate_mirrors_dataplane_semantics(self):
        platform, firewall = self.build()
        firewall.deny(priority=100, l4_dst=80)
        firewall.allow(priority=200, ip_src="10.0.0.1", l4_dst=80)
        blocked = FlowKey.from_packet(
            Ethernet() / IPv4(src="10.0.0.9", dst="10.0.0.2")
            / UDP(src_port=1, dst_port=80) / b"")
        allowed = FlowKey.from_packet(
            Ethernet() / IPv4(src="10.0.0.1", dst="10.0.0.2")
            / UDP(src_port=1, dst_port=80) / b"")
        other = FlowKey.from_packet(
            Ethernet() / IPv4(src="10.0.0.9", dst="10.0.0.2")
            / UDP(src_port=1, dst_port=443) / b"")
        assert not firewall.evaluate(blocked)
        assert firewall.evaluate(allowed)
        assert firewall.evaluate(other)

    def test_validation(self):
        with pytest.raises(ControllerError):
            Firewall(table_id=1, next_table=1)
        platform, firewall = self.build()
        with pytest.raises(ControllerError):
            firewall.deny(priority=0, l4_dst=80)


class TestLoadBalancer:
    def build(self, backends=("10.0.0.2", "10.0.0.3"), mode="round_robin"):
        platform = make_platform(
            Topology.single(4, bandwidth_bps=1e9)
        )
        lb = platform.add_app(LoadBalancer(
            vip="10.0.99.1", backends=list(backends), mode=mode,
            table_id=0, next_table=1,
        ))
        platform.start()
        # Backends must be known to the tracker: have them speak once.
        h1 = platform.host("h1")
        for name in ("h2", "h3"):
            platform.host(name).ping(h1.ip, count=1)
        platform.run(3.0)
        return platform, lb

    def _responder(self, pkt, host):
        udp = pkt[UDP]
        host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port, b"ok")

    def test_vip_arp_answered(self):
        platform, lb = self.build()
        h1 = platform.host("h1")
        h1.send_udp("10.0.99.1", 4000, 8080, b"req")
        platform.run(2.0)
        assert lb.arp_replies >= 1
        from repro.packet import IPv4Address

        assert h1.arp_table[IPv4Address("10.0.99.1")] == lb.vmac

    def test_connections_balanced_round_robin(self):
        platform, lb = self.build()
        for name in ("h2", "h3"):
            platform.host(name).bind_udp(8080, self._responder)
        h1, h4 = platform.host("h1"), platform.host("h4")
        load = RequestLoad(platform.sim, [h1, h4], lb.vip,
                           request_rate=40.0, duration=2.0)
        platform.run(6.0)
        assert load.completed > 30
        assert load.timeouts == 0
        dist = lb.distribution()
        assert set(dist) == {"10.0.0.2", "10.0.0.3"}
        assert lb.imbalance() < 1.2

    def test_hash_mode_is_sticky_per_flow(self):
        platform, lb = self.build(mode="hash")
        for name in ("h2", "h3"):
            platform.host(name).bind_udp(8080, self._responder)
        h1 = platform.host("h1")
        got = []
        h1.on_udp = lambda pkt, host: got.append(pkt)
        for _ in range(5):
            h1.send_udp(lb.vip, 4321, 8080, b"req")
            platform.run(0.5)
        # One connection (one 5-tuple): exactly one backend assigned.
        assert lb.connections == 1
        assert sum(1 for v in lb.assignments.values() if v) == 1

    def test_client_only_sees_the_vip(self):
        platform, lb = self.build()
        for name in ("h2", "h3"):
            platform.host(name).bind_udp(8080, self._responder)
        h1 = platform.host("h1")
        sources = []
        h1.on_receive = lambda pkt: (
            sources.append(str(pkt[IPv4].src)) if IPv4 in pkt else None
        )
        h1.send_udp(lb.vip, 4500, 8080, b"req")
        platform.run(3.0)
        assert "10.0.99.1" in sources
        assert "10.0.0.2" not in sources
        assert "10.0.0.3" not in sources

    def test_dead_backend_not_selected(self):
        platform, lb = self.build()
        # Only h2 responds; h3's link dies before any traffic.
        platform.host("h2").bind_udp(8080, self._responder)
        platform.fail_link("h3", "s1")
        platform.run(0.5)
        h1 = platform.host("h1")
        RequestLoad(platform.sim, [h1], lb.vip,
                    request_rate=20.0, duration=1.0)
        platform.run(5.0)
        # h3 was tracked before its death, so some assignments may land
        # there and time out; but h2 must carry real load.
        assert lb.assignments[lb.backends[0]] > 0

    def test_validation(self):
        with pytest.raises(ControllerError):
            LoadBalancer(vip="10.0.0.1", backends=[])
        with pytest.raises(ControllerError):
            LoadBalancer(vip="10.0.0.1", backends=["10.0.0.2"],
                         mode="bogus")


class TestSlicing:
    def build(self, enforce=True):
        platform = make_platform(Topology.single(3, bandwidth_bps=100e6))
        slicing = platform.add_app(
            NetworkSlicing(table_id=0, next_table=1, enforce=enforce)
        )
        platform.start()
        return platform, slicing

    def test_slice_caps_member_rate(self):
        platform, slicing = self.build()
        h1, h2 = platform.host("h1"), platform.host("h2")
        slicing.define_slice("tenant-a", [h1.ip], rate_bps=5e6)
        platform.run(0.5)
        sink = FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=50e6, packet_size=1000,
                  duration=4.0)
        start_bytes = sink.total_bytes
        platform.run(5.0)
        received_bps = (sink.total_bytes - start_bytes) * 8 / 4.0
        assert received_bps < 8e6  # capped near 5 Mb/s, far below 50

    def test_without_enforcement_traffic_is_uncapped(self):
        platform, slicing = self.build(enforce=False)
        h1, h2 = platform.host("h1"), platform.host("h2")
        slicing.define_slice("tenant-a", [h1.ip], rate_bps=5e6)
        platform.run(0.5)
        sink = FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=50e6, packet_size=1000,
                  duration=4.0)
        platform.run(5.0)
        received_bps = sink.total_bytes * 8 / 4.0
        assert received_bps > 30e6

    def test_non_members_unaffected(self):
        platform, slicing = self.build()
        h1, h2, h3 = (platform.host(n) for n in ("h1", "h2", "h3"))
        slicing.define_slice("tenant-a", [h1.ip], rate_bps=1e6)
        platform.run(0.5)
        sink = FlowSink(h2, 9000)
        CBRStream(h3, h2.ip, rate_bps=20e6, packet_size=1000,
                  duration=3.0, src_port=20001)
        platform.run(4.0)
        received_bps = sink.total_bytes * 8 / 3.0
        assert received_bps > 15e6

    def test_overlapping_membership_rejected(self):
        platform, slicing = self.build()
        h1 = platform.host("h1")
        slicing.define_slice("a", [h1.ip], rate_bps=1e6)
        with pytest.raises(ControllerError):
            slicing.define_slice("b", [h1.ip], rate_bps=1e6)

    def test_remove_slice_uncaps(self):
        platform, slicing = self.build()
        h1, h2 = platform.host("h1"), platform.host("h2")
        slc = slicing.define_slice("a", [h1.ip], rate_bps=1e6)
        platform.run(0.5)
        slicing.remove_slice(slc.slice_id)
        platform.run(0.5)
        sink = FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=20e6, packet_size=1000,
                  duration=3.0)
        platform.run(4.0)
        assert sink.total_bytes * 8 / 3.0 > 15e6

    def test_slice_of_lookup(self):
        platform, slicing = self.build()
        h1 = platform.host("h1")
        slc = slicing.define_slice("a", [h1.ip], rate_bps=1e6)
        assert slicing.slice_of(h1.ip) is slc
        assert slicing.slice_of("99.9.9.9") is None
