"""Traffic-engineering tests: pure placement algorithms plus the app."""

import networkx as nx
import pytest

from repro.apps import (
    Demand,
    TrafficEngineering,
    ecmp_place,
    greedy_place,
    spf_place,
)
from repro.core import ZenPlatform
from repro.errors import ControllerError
from repro.netem import Topology
from repro.packet import IPv4Address


def diamond():
    """1 -- {2, 3} -- 4: two disjoint equal-cost paths."""
    g = nx.Graph()
    g.add_edges_from([(1, 2), (2, 4), (1, 3), (3, 4)])
    return g


def locate_identity(hosts):
    mapping = {IPv4Address(ip): dpid for ip, dpid in hosts.items()}

    def locate(ip):
        return mapping[IPv4Address(ip)]

    return locate


HOSTS = {"10.0.0.1": 1, "10.0.0.4": 4}
LOCATE = locate_identity(HOSTS)


def caps(graph, bps):
    return {frozenset(e): bps for e in graph.edges()}


class TestPurePlacement:
    def test_spf_piles_onto_one_path(self):
        demands = [Demand("10.0.0.1", "10.0.0.4", 10e6) for _ in range(4)]
        result = spf_place(diamond(), demands, LOCATE)
        used_paths = {tuple(p) for p in result.paths.values()}
        assert len(used_paths) == 1
        assert max(result.link_loads.values()) == 40e6

    def test_greedy_spreads_across_paths(self):
        graph = diamond()
        demands = [Demand("10.0.0.1", "10.0.0.4", 10e6) for _ in range(4)]
        result = greedy_place(graph, demands, LOCATE,
                              caps(graph, 100e6), k=4)
        assert len(result.rejected) == 0
        # Perfect split: 20 Mb/s per arm instead of 40 on one.
        assert max(result.link_loads.values()) == pytest.approx(20e6)
        assert result.max_utilisation(caps(graph, 100e6)) == pytest.approx(0.2)

    def test_greedy_beats_spf_on_max_utilisation(self):
        graph = diamond()
        demands = [Demand("10.0.0.1", "10.0.0.4", 10e6) for _ in range(6)]
        capacities = caps(graph, 100e6)
        spf = spf_place(graph, demands, LOCATE)
        greedy = greedy_place(graph, demands, LOCATE, capacities)
        assert (greedy.max_utilisation(capacities)
                < spf.max_utilisation(capacities))

    def test_greedy_rejects_when_capacity_exhausted(self):
        graph = diamond()
        demands = [Demand("10.0.0.1", "10.0.0.4", 60e6) for _ in range(3)]
        result = greedy_place(graph, demands, LOCATE, caps(graph, 100e6),
                              admit_all=False)
        assert len(result.rejected) == 1
        assert result.admitted_rate == 120e6

    def test_greedy_admit_all_overloads_instead(self):
        graph = diamond()
        demands = [Demand("10.0.0.1", "10.0.0.4", 60e6) for _ in range(3)]
        result = greedy_place(graph, demands, LOCATE, caps(graph, 100e6),
                              admit_all=True)
        assert result.rejected == []
        assert result.max_utilisation(caps(graph, 100e6)) > 1.0

    def test_greedy_places_largest_first(self):
        graph = diamond()
        demands = [
            Demand("10.0.0.1", "10.0.0.4", 90e6),
            Demand("10.0.0.1", "10.0.0.4", 30e6),
        ]
        result = greedy_place(graph, demands, LOCATE, caps(graph, 100e6))
        big_path = result.paths[demands[0]]
        small_path = result.paths[demands[1]]
        assert big_path != small_path  # elephant gets its own arm

    def test_ecmp_is_deterministic_and_spreads(self):
        graph = diamond()
        demands = [Demand(f"10.0.1.{i}", "10.0.0.4", 1e6)
                   for i in range(1, 9)]

        def locate(ip):
            return 4 if str(ip) == "10.0.0.4" else 1

        a = ecmp_place(graph, demands, locate)
        b = ecmp_place(graph, demands, locate)
        assert [p for p in a.paths.values()] == [
            p for p in b.paths.values()
        ]
        used = {tuple(p) for p in a.paths.values()}
        assert len(used) == 2  # both arms see traffic

    def test_disconnected_pair_rejected(self):
        graph = diamond()
        graph.add_node(9)
        demands = [Demand("10.0.0.1", "10.0.9.9", 1e6)]

        def locate(ip):
            return 9 if str(ip) == "10.0.9.9" else 1

        for place in (spf_place, ecmp_place):
            result = place(graph, demands, locate)
            assert result.paths[demands[0]] is None
        result = greedy_place(graph, demands, locate, caps(graph, 1e9))
        assert demands[0] in result.rejected

    def test_demand_validation(self):
        with pytest.raises(ControllerError):
            Demand("10.0.0.1", "10.0.0.2", 0)


class TestTrafficEngineeringApp:
    @pytest.fixture
    def platform(self):
        # Diamond of switches, one host at each end.
        topo = Topology()
        for _ in range(4):
            topo.add_switch()
        topo.add_link("s1", "s2", bandwidth_bps=10e6)
        topo.add_link("s2", "s4", bandwidth_bps=10e6)
        topo.add_link("s1", "s3", bandwidth_bps=10e6)
        topo.add_link("s3", "s4", bandwidth_bps=10e6)
        h1 = topo.add_host()
        h2 = topo.add_host()
        topo.add_link(h1, "s1", bandwidth_bps=100e6)
        topo.add_link(h2, "s4", bandwidth_bps=100e6)
        p = ZenPlatform(topo, profile="proactive")
        p.te = p.add_app(TrafficEngineering(
            default_capacity_bps=10e6, strategy="greedy",
        ))
        p.start()
        # Learn both hosts.
        p.host("h1").ping(p.host("h2").ip, count=1)
        p.run(3.0)
        return p

    def test_install_programs_paths(self, platform):
        h1, h2 = platform.host("h1"), platform.host("h2")
        result = platform.te.install([
            Demand(h1.ip, h2.ip, 6e6),
            Demand(h2.ip, h1.ip, 6e6),
        ])
        platform.run(0.5)
        assert all(p is not None for p in result.paths.values())
        te_rules = sum(
            1 for dp in platform.net.switches.values()
            for t in dp.tables for e in t if e.priority == 25000
        )
        assert te_rules > 0
        session = h1.ping(h2.ip, count=3, interval=0.1)
        platform.run(3.0)
        assert session.received == 3

    def test_te_spreads_two_elephants(self, platform):
        h1, h2 = platform.host("h1"), platform.host("h2")
        # Two demands from the same source pair would collide on ip_src/
        # ip_dst match granularity, so model the reverse direction too.
        result = platform.te.install([
            Demand(h1.ip, h2.ip, 7e6),
            Demand(h2.ip, h1.ip, 7e6),
        ])
        # Both fit without sharing any directed edge pair in a way that
        # exceeds capacity: max utilisation <= 0.7.
        caps_map = {
            frozenset(e): 10e6
            for e in platform.discovery.graph().edges()
        }
        assert result.max_utilisation(caps_map) <= 0.7 + 1e-9

    def test_replace_after_failure(self, platform):
        h1, h2 = platform.host("h1"), platform.host("h2")
        result = platform.te.install([Demand(h1.ip, h2.ip, 6e6)])
        path = next(iter(result.paths.values()))
        mid = platform.net.switch_name(path[1])
        platform.fail_link("s1", mid)
        platform.run(1.0)
        assert platform.te.replacements >= 1
        new_path = next(iter(platform.te.last_result.paths.values()))
        assert new_path is not None and new_path != path
        session = h1.ping(h2.ip, count=2, interval=0.1)
        platform.run(3.0)
        assert session.received == 2

    def test_strategy_validation(self):
        with pytest.raises(ControllerError):
            TrafficEngineering(strategy="bogus")
