"""Distributed baseline tests: spanning tree and link-state routing."""


from repro.baselines import (
    BPDU,
    LinkStateNetwork,
    LSMessage,
    SpanningTreeNetwork,
)
from repro.netem import Network, Topology
from repro.packet import MACAddress, Packet, Ethernet


def build_stp(topo, **kw):
    net = Network(topo)
    return net, SpanningTreeNetwork(net, **kw)


def build_ls(topo, **kw):
    net = Network(topo)
    return net, LinkStateNetwork(net, **kw)


class TestBpduCodec:
    def test_roundtrip(self):
        frame = (Ethernet(dst="01:80:c2:00:00:00",
                          src="02:00:00:00:00:01", ethertype=0x88B5)
                 / BPDU(root=1, cost=2, bridge=3, port=4,
                        tc_deadline=9.5))
        out = Packet.decode(frame.encode())
        bpdu = out[BPDU]
        assert bpdu.priority_vector() == (1, 2, 3, 4)
        assert bpdu.tc_deadline == 9.5


class TestLsCodec:
    def test_hello_roundtrip(self):
        frame = (Ethernet(dst="01:80:c2:00:00:0f",
                          src="02:00:00:00:00:01", ethertype=0x88B6)
                 / LSMessage.hello(7))
        out = Packet.decode(frame.encode())[LSMessage]
        assert out.is_hello and out.origin == 7

    def test_lsa_roundtrip(self):
        macs = [MACAddress.local(i) for i in (1, 2)]
        frame = (Ethernet(dst="01:80:c2:00:00:0f",
                          src="02:00:00:00:00:01", ethertype=0x88B6)
                 / LSMessage.lsa(9, 42, [1, 2, 3], macs))
        out = Packet.decode(frame.encode())[LSMessage]
        assert out.is_lsa
        assert (out.origin, out.seq) == (9, 42)
        assert out.neighbours == [1, 2, 3]
        assert out.hosts == macs


class TestSpanningTree:
    def test_lowest_bridge_id_becomes_root(self):
        net, stp = build_stp(Topology.ring(4))
        stp.converge(5.0)
        assert stp.is_converged
        assert stp.root_bridge == "s1"
        assert stp.agents["s1"].is_root_bridge

    def test_ring_blocks_exactly_one_port(self):
        net, stp = build_stp(Topology.ring(4))
        stp.converge(5.0)
        assert stp.blocked_ports() == 1

    def test_mesh_blocks_redundant_links(self):
        net, stp = build_stp(Topology.mesh(4))
        stp.converge(5.0)
        assert stp.is_converged
        # Full mesh: 6 switch links, tree needs 3 -> 3 links blocked.
        assert stp.blocked_ports() == 3

    def test_connectivity_on_loop_topology(self):
        net, stp = build_stp(Topology.ring(4, hosts_per_switch=1,
                                           bandwidth_bps=1e9))
        stp.converge(5.0)
        assert net.ping_all(count=1, settle=3.0) == 1.0

    def test_no_broadcast_storm(self):
        net, stp = build_stp(Topology.ring(4, hosts_per_switch=1,
                                           bandwidth_bps=1e9))
        stp.converge(5.0)
        before = sum(dp.packets_forwarded
                     for dp in net.switches.values())
        # Unanswerable broadcast: ARP for a ghost address.
        net.host("h1").send_udp("10.9.9.9", 1, 2, b"")
        net.run(5.0)
        after = sum(dp.packets_forwarded for dp in net.switches.values())
        # Hello BPDUs dominate; a storm would be thousands of frames.
        assert after - before < 300

    def test_failure_reopens_blocked_port(self):
        net, stp = build_stp(Topology.ring(4, hosts_per_switch=1,
                                           bandwidth_bps=1e9))
        stp.converge(5.0)
        assert stp.blocked_ports() == 1
        net.fail_link("s1", "s2")
        net.run(8.0)
        assert stp.blocked_ports() == 0  # chain now, no redundancy
        assert net.ping_all(count=1, settle=5.0) == 1.0

    def test_convergence_flushes_stale_flows(self):
        net, stp = build_stp(Topology.ring(4, hosts_per_switch=1,
                                           bandwidth_bps=1e9))
        stp.converge(5.0)
        net.ping_all(count=1, settle=3.0)  # populate learned state
        net.fail_link("s1", "s2")
        net.run(8.0)
        h1, h2 = net.host("h1"), net.host("h2")
        session = h1.ping(h2.ip, count=3, interval=0.2)
        net.run(8.0)
        assert session.received == 3

    def test_role_changes_counted(self):
        net, stp = build_stp(Topology.ring(4))
        stp.converge(5.0)
        changes = {n: a.role_changes for n, a in stp.agents.items()}
        net.run(10.0)
        # Steady state: no further role changes.
        assert {n: a.role_changes for n, a in stp.agents.items()} == changes


class TestLinkState:
    def test_full_convergence(self):
        net, ls = build_ls(Topology.ring(4, hosts_per_switch=1,
                                         bandwidth_bps=1e9))
        ls.converge(5.0)
        assert ls.is_converged
        for agent in ls.agents.values():
            assert agent.graph().number_of_edges() == 4

    def test_connectivity(self):
        net, ls = build_ls(Topology.ring(4, hosts_per_switch=1,
                                         bandwidth_bps=1e9))
        ls.converge(5.0)
        assert net.ping_all(count=1, settle=3.0) == 1.0

    def test_routes_are_shortest(self):
        net, ls = build_ls(Topology.ring(5, hosts_per_switch=1,
                                         bandwidth_bps=1e9))
        ls.converge(5.0)
        net.ping_all(count=1, settle=3.0)
        # s1's route to h3 (attached to s3) must leave via s2 (2 hops),
        # not via s5 (3 hops).
        agent = ls.agents["s1"]
        h3 = net.host("h3")
        out_port = agent.routes.get(h3.mac)
        assert out_port == net.port_of("s1", "s2")

    def test_failure_reroutes_via_dead_interval(self):
        net, ls = build_ls(Topology.ring(4, hosts_per_switch=1,
                                         bandwidth_bps=1e9),
                           hello_interval=0.5)
        ls.converge(5.0)
        net.ping_all(count=1, settle=3.0)
        t_fail = net.sim.now
        net.fail_link("s1", "s2")
        net.run(8.0)
        detect_delay = ls.last_route_change() - t_fail
        # Hello-based detection: bounded below by ~dead interval.
        assert 0.5 < detect_delay < 4.0
        h1, h2 = net.host("h1"), net.host("h2")
        session = h1.ping(h2.ip, count=3, interval=0.2)
        net.run(6.0)
        assert session.received == 3

    def test_carrier_detect_is_faster(self):
        def failover_delay(carrier):
            net, ls = build_ls(
                Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
                hello_interval=0.5, carrier_detect=carrier,
            )
            ls.converge(5.0)
            net.ping_all(count=1, settle=3.0)
            t_fail = net.sim.now
            net.fail_link("s1", "s2")
            net.run(8.0)
            return ls.last_route_change() - t_fail

        assert failover_delay(True) < failover_delay(False)

    def test_host_learning_excludes_switch_ports(self):
        net, ls = build_ls(Topology.linear(2, hosts_per_switch=1,
                                           bandwidth_bps=1e9))
        ls.converge(5.0)
        net.ping_all(count=1, settle=3.0)
        for agent in ls.agents.values():
            for mac in agent.local_hosts:
                host_macs = {h.mac for h in net.hosts.values()}
                assert mac in host_macs

    def test_lsdb_consistency(self):
        net, ls = build_ls(Topology.mesh(4, hosts_per_switch=1,
                                         bandwidth_bps=1e9))
        ls.converge(5.0)
        net.ping_all(count=1, settle=3.0)
        # Every agent's LSDB must agree on the adjacency sets.
        reference = {
            origin: record.neighbours
            for origin, record in ls.agents["s1"].lsdb.items()
        }
        for agent in ls.agents.values():
            view = {o: r.neighbours for o, r in agent.lsdb.items()}
            assert view == reference
