"""Control channel and switch agent behaviour."""

import pytest

from repro.dataplane import (
    Bucket,
    Datapath,
    FlowEntry,
    GroupType,
    Match,
    Output,
)
from repro.errors import ChannelClosedError
from repro.packet import Ethernet, IPv4, Packet, UDP
from repro.sim import Simulator
from repro.southbound import (
    BarrierRequest,
    ControlChannel,
    ControllerRole,
    EchoReply,
    EchoRequest,
    Error,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    GroupMod,
    Hello,
    MeterMod,
    ModCommand,
    PacketIn,
    PacketOut,
    PortStatus,
    RoleRequest,
    StatsKind,
    StatsRequest,
    SwitchAgent,
)


def make_stack(latency=0.001, flowmod_delay=0.0, **dp_kw):
    sim = Simulator()
    dp = Datapath(1, sim, **dp_kw)
    dp.add_port(1)
    dp.add_port(2)
    channel = ControlChannel(sim, latency=latency)
    agent = SwitchAgent(dp, channel, flowmod_delay=flowmod_delay)
    inbox = []
    channel.controller_end.handler = inbox.append
    channel.controller_end.on_connect = (
        lambda: channel.controller_end.send(Hello())
    )
    return sim, dp, channel, agent, inbox


def udp_packet():
    return (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
            / IPv4(src="10.0.0.1", dst="10.0.0.2")
            / UDP(src_port=1, dst_port=2) / b"x")


class TestChannel:
    def test_latency_applied(self):
        sim, dp, channel, agent, inbox = make_stack(latency=0.01)
        channel.connect()
        arrival = []
        channel.controller_end.handler = lambda m: arrival.append(sim.now)
        sim.run_until_idle()
        assert arrival and arrival[0] == pytest.approx(0.01)

    def test_fifo_ordering(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        order = []
        channel.controller_end.handler = (
            lambda m: order.append(type(m).__name__)
        )
        channel.switch_end.send(EchoRequest(b"1"))
        channel.switch_end.send(EchoRequest(b"2"))
        sim.run_until_idle()
        assert order == ["EchoRequest", "EchoRequest"]

    def test_send_on_down_channel_raises(self):
        sim, dp, channel, agent, inbox = make_stack()
        with pytest.raises(ChannelClosedError):
            channel.controller_end.send(EchoRequest())

    def test_messages_in_flight_lost_on_disconnect(self):
        sim, dp, channel, agent, inbox = make_stack(latency=1.0)
        channel.connect()
        channel.controller_end.send(EchoRequest(b"doomed"))
        sim.run(until=0.5)
        channel.disconnect()
        sim.run_until_idle()
        assert all(not isinstance(m, EchoRequest) for m in inbox)

    def test_request_reply_correlation(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        got = []
        channel.controller_end.request(EchoRequest(b"hi"), got.append)
        sim.run_until_idle()
        assert len(got) == 1
        assert isinstance(got[0], EchoReply)
        assert got[0].data == b"hi"
        # The reply was consumed by the callback, not the handler.
        assert all(not isinstance(m, EchoReply) for m in inbox)

    def test_stats_counters(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(EchoRequest(b"abc"))
        sim.run_until_idle()
        stats = channel.total_stats()
        assert stats["to_switch"]["by_type"]["EchoRequest"] == 1
        assert stats["to_controller"]["by_type"]["EchoReply"] == 1
        assert stats["to_switch"]["bytes"] > 0

    def test_bandwidth_serialisation_delay(self):
        sim = Simulator()
        dp = Datapath(1, sim)
        dp.add_port(1)
        channel = ControlChannel(sim, latency=0.0, bandwidth_bps=8000)
        SwitchAgent(dp, channel)
        times = []
        channel.controller_end.handler = lambda m: times.append(sim.now)
        channel.controller_end.on_connect = lambda: None
        channel.connect()
        # switch sends Hello on connect; ~11 bytes at 1kB/s ≈ 11 ms
        sim.run_until_idle()
        assert times and times[0] > 0.005


class TestAgentHandshake:
    def test_hello_and_features(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        assert any(isinstance(m, Hello) for m in inbox)
        assert agent.peer_version == 1
        got = []
        channel.controller_end.request(FeaturesRequest(), got.append)
        sim.run_until_idle()
        assert got[0].dpid == 1
        assert got[0].num_tables == len(dp.tables)
        assert {p.number for p in got[0].ports} == {1, 2}


class TestAgentFlowMods:
    def test_add_and_forward(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.ADD,
            match=Match(eth_type=0x0800),
            actions=[Output(2)],
            priority=5,
        ))
        sim.run_until_idle()
        assert dp.flow_count() == 1
        sent = []
        dp.transmit = lambda p, pkt: sent.append(p)
        dp.inject(udp_packet(), 1)
        assert sent == [2]

    def test_modify_updates_actions_keeps_counters(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.ADD, match=Match(eth_type=0x0800),
            actions=[Output(1)], priority=5,
        ))
        sim.run_until_idle()
        dp.inject(udp_packet(), 1)
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.MODIFY, match=Match(eth_type=0x0800),
            actions=[Output(2)],
        ))
        sim.run_until_idle()
        entry = dp.tables[0].entries()[0]
        assert entry.actions == [Output(2)]
        assert entry.packet_count == 1

    def test_delete_strict_vs_loose(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        for priority in (5, 6):
            channel.controller_end.send(FlowMod(
                command=FlowModCommand.ADD,
                match=Match(eth_type=0x0800),
                priority=priority,
            ))
        sim.run_until_idle()
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=Match(eth_type=0x0800), priority=5,
        ))
        sim.run_until_idle()
        assert dp.flow_count() == 1
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.DELETE, match=Match(),
        ))
        sim.run_until_idle()
        assert dp.flow_count() == 0

    def test_table_full_reports_error(self):
        sim, dp, channel, agent, inbox = make_stack(table_capacity=1)
        channel.connect()
        sim.run_until_idle()
        for port in (80, 81):
            channel.controller_end.send(FlowMod(
                command=FlowModCommand.ADD, match=Match(l4_dst=port),
            ))
        sim.run_until_idle()
        errors = [m for m in inbox if isinstance(m, Error)]
        assert errors and errors[0].code == Error.TABLE_FULL

    def test_flow_removed_notification_only_when_flagged(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.ADD, match=Match(l4_dst=1),
            idle_timeout=1.0, flags=FlowMod.SEND_FLOW_REM,
        ))
        channel.controller_end.send(FlowMod(
            command=FlowModCommand.ADD, match=Match(l4_dst=2),
            idle_timeout=1.0,
        ))
        sim.run(until=5.0)
        removed = [m for m in inbox if isinstance(m, FlowRemoved)]
        assert len(removed) == 1
        assert removed[0].match == Match(l4_dst=1)
        assert removed[0].reason == "idle_timeout"


class TestAgentBarriersAndDelay:
    def test_barrier_waits_for_flowmod_delay(self):
        sim, dp, channel, agent, inbox = make_stack(flowmod_delay=0.01)
        channel.connect()
        sim.run_until_idle()
        done = []
        for i in range(5):
            channel.controller_end.send(FlowMod(
                command=FlowModCommand.ADD, match=Match(l4_dst=i),
            ))
        channel.controller_end.request(
            BarrierRequest(), lambda m: done.append(sim.now))
        sim.run_until_idle()
        # Barrier reply must come after 5 × 10 ms of installs (plus RTT).
        assert done[0] >= 0.05
        assert dp.flow_count() == 5

    def test_immediate_barrier_with_zero_delay(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        start = sim.now
        done = []
        channel.controller_end.request(
            BarrierRequest(), lambda m: done.append(sim.now))
        sim.run_until_idle()
        assert done[0] == pytest.approx(start + 2 * channel.latency)


class TestAgentDataplaneEvents:
    def test_packet_in_encodes_frame(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        dp.inject(udp_packet(), 1)
        sim.run_until_idle()
        pins = [m for m in inbox if isinstance(m, PacketIn)]
        assert len(pins) == 1
        decoded = Packet.decode(pins[0].data)
        assert decoded[IPv4].dst == "10.0.0.2"
        assert pins[0].in_port == 1

    def test_port_status_event(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        dp.set_port_state(2, False)
        sim.run_until_idle()
        statuses = [m for m in inbox if isinstance(m, PortStatus)]
        assert statuses and statuses[0].reason == "down"
        assert statuses[0].port.number == 2

    def test_packet_out_executes(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        sent = []
        dp.transmit = lambda p, pkt: sent.append(p)
        channel.controller_end.send(PacketOut(
            in_port=0, actions=[Output(2)], data=udp_packet().encode(),
        ))
        sim.run_until_idle()
        assert sent == [2]


class TestAgentGroupsMetersRolesStats:
    def test_group_mod_lifecycle(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(GroupMod(
            ModCommand.ADD, 5, GroupType.ALL, [Bucket([Output(1)])],
        ))
        sim.run_until_idle()
        assert 5 in dp.groups
        channel.controller_end.send(GroupMod(ModCommand.DELETE, 5))
        sim.run_until_idle()
        assert 5 not in dp.groups

    def test_bad_group_mod_errors(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(GroupMod(
            ModCommand.MODIFY, 99, GroupType.ALL, [Bucket([Output(1)])],
        ))
        sim.run_until_idle()
        assert any(isinstance(m, Error) and m.code == Error.BAD_GROUP
                   for m in inbox)

    def test_meter_mod(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        channel.controller_end.send(MeterMod(
            ModCommand.ADD, 3, rate_bps=1e6, burst_bytes=1000,
        ))
        sim.run_until_idle()
        assert 3 in dp.meters
        assert dp.meters.get(3).rate_bps == 1e6

    def test_role_request_generation_check(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        replies = []
        channel.controller_end.request(
            RoleRequest(ControllerRole.PRIMARY, 10), replies.append)
        sim.run_until_idle()
        assert replies[-1].role == ControllerRole.PRIMARY
        # A stale generation must be refused.
        channel.controller_end.send(
            RoleRequest(ControllerRole.SECONDARY, 5))
        sim.run_until_idle()
        assert any(isinstance(m, Error) and m.code == Error.BAD_ROLE
                   for m in inbox)
        assert agent.controller_role == ControllerRole.PRIMARY

    def test_flow_stats_via_channel(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        sim.run_until_idle()
        dp.install_flow(FlowEntry(Match(l4_dst=9), [Output(2)],
                                  priority=3))
        dp.inject(udp_packet(), 1)  # dst_port=2: miss -> packet-in only
        replies = []
        channel.controller_end.request(
            StatsRequest(StatsKind.FLOW), replies.append)
        channel.controller_end.request(
            StatsRequest(StatsKind.AGGREGATE), replies.append)
        sim.run_until_idle()
        flow_stats, agg = replies
        assert len(flow_stats.entries) == 1
        assert flow_stats.entries[0].match == Match(l4_dst=9)
        assert agg.entries[0]["flows"] == 1
