"""repro.check: invariant checker, fuzzer determinism, and purity.

Four families:

* seeded violations — networks programmed with a deliberate forwarding
  loop, blackhole, slice leak, or firewall bypass are caught, each with
  a concrete counterexample packet class;
* clean bills of health — every canned example scenario checks clean
  (the checker's zero-false-positive obligation);
* fuzzer determinism — same seed, bit-identical scenario and outcome;
* purity — snapshotting and checking never perturb the network
  (counters, flow state, kernel event count all untouched).
"""

import json

import pytest

from repro.core import ZenPlatform
from repro.dataplane import Match
from repro.dataplane.actions import Output
from repro.dataplane.flowtable import FlowEntry
from repro.netem import Topology
from repro.packet import MACAddress

from repro.check import (
    BLACKHOLE_KINDS,
    FirewallCompliance,
    NetworkChecker,
    NetworkSnapshot,
    Scenario,
    SliceIsolation,
    example_scenarios,
    generate_scenario,
    load_scenario,
    minimize,
    result_digest,
    run_scenario,
    write_repro,
)


def _bare_ring(n=3, seed=1):
    return ZenPlatform(
        Topology.ring(n, hosts_per_switch=1), profile="bare", seed=seed
    ).start()


def _install(net, switch, match, out_port, priority=500):
    net.switches[switch].install_flow(
        FlowEntry(match, [Output(out_port)], priority=priority)
    )


# ----------------------------------------------------------------------
# Seeded violations: the checker must find what we planted
# ----------------------------------------------------------------------
class TestSeededViolations:
    def test_detects_forwarding_loop(self):
        net = _bare_ring().net
        mac = MACAddress("02:aa:00:00:00:99")
        for a, b in (("s1", "s2"), ("s2", "s3"), ("s3", "s1")):
            _install(net, a, Match(eth_dst=mac), net.port_of(a, b))
        result = NetworkChecker().check(net)
        assert not result.ok
        loops = result.of_kind("loop")
        assert loops
        for violation in loops:
            # Every loop report carries a replayable counterexample:
            # a packet class plus a concrete witness key in it.
            assert violation.counterexample is not None
            assert violation.witness is not None
            assert violation.witness.eth_dst == mac
            assert violation.counterexample.contains(violation.witness)

    def test_detects_blackhole_dead_port(self):
        platform = _bare_ring()
        net = platform.net
        h2 = net.hosts["h2"]
        _install(net, "s1", Match(eth_dst=h2.mac), net.port_of("s1", "s2"))
        net.fail_link("s1", "s2")
        result = NetworkChecker().check(net)
        assert not result.ok
        holes = [v for v in result.violations
                 if v.kind in BLACKHOLE_KINDS]
        assert holes
        v = holes[0]
        assert v.kind == "dead_port"
        assert "h1" in v.message and "h2" in v.message
        assert v.counterexample is not None
        assert v.counterexample.contains(v.witness)

    def test_detects_slice_leak(self):
        net = _bare_ring().net
        h3 = net.hosts["h3"]
        _install(net, "s1", Match(eth_dst=h3.mac), net.port_of("s1", "s3"))
        _install(net, "s3", Match(eth_dst=h3.mac), net.port_of("s3", "h3"))
        checker = NetworkChecker(
            [SliceIsolation({"blue": ["h1"], "red": ["h3"]})]
        )
        result = checker.check(net)
        leaks = result.of_kind("slice_leak")
        assert leaks
        assert "blue" in leaks[0].message and "red" in leaks[0].message
        assert leaks[0].counterexample is not None

    def test_detects_firewall_bypass(self):
        from repro.apps.firewall import Firewall

        platform = _bare_ring()
        firewall = platform.add_app(Firewall(table_id=1, next_table=2))
        firewall.deny(ip_proto=17)  # policy says: no UDP anywhere
        net = platform.net
        h2 = net.hosts["h2"]
        # ...but someone programmed table 0 to deliver around it.
        _install(net, "s1", Match(eth_dst=h2.mac), net.port_of("s1", "s2"))
        _install(net, "s2", Match(eth_dst=h2.mac), net.port_of("s2", "h2"))
        result = NetworkChecker([FirewallCompliance(firewall)]).check(net)
        bypasses = result.of_kind("firewall_bypass")
        assert bypasses
        assert bypasses[0].counterexample is not None

    def test_clean_network_reports_no_violations(self):
        net = _bare_ring().net
        assert NetworkChecker().check(net).ok


# ----------------------------------------------------------------------
# Zero false positives on the shipped example stacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scenario", example_scenarios(), ids=lambda s: s.name
)
def test_example_scenario_checks_clean(scenario):
    result = run_scenario(scenario)
    assert result.ok, result.verdicts["violations"]
    assert result.verdicts["probes_run"] > 0


# ----------------------------------------------------------------------
# Fuzzer determinism
# ----------------------------------------------------------------------
class TestFuzzerDeterminism:
    def test_generation_is_pure(self):
        assert (generate_scenario(7).to_dict()
                == generate_scenario(7).to_dict())
        assert (generate_scenario(3).to_dict()
                != generate_scenario(4).to_dict())

    def test_scenario_dict_roundtrip(self):
        scenario = generate_scenario(11)
        assert (Scenario.from_dict(scenario.to_dict()).to_dict()
                == scenario.to_dict())

    def test_same_seed_is_bit_identical(self):
        scenario = generate_scenario(1)  # ring/reactive with faults
        assert scenario.faults  # the interesting case
        first = run_scenario(scenario, monitor=True)
        second = run_scenario(scenario, monitor=True)
        assert result_digest(first) == result_digest(second)
        assert first.observables == second.observables

    def test_repro_file_roundtrip(self, tmp_path):
        scenario = generate_scenario(2)
        result = run_scenario(scenario)
        path = tmp_path / "repro.json"
        write_repro(str(path), scenario, result)
        payload = json.loads(path.read_text())
        assert payload["digest"] == result_digest(result)
        replayed = run_scenario(load_scenario(str(path)))
        assert result_digest(replayed) == payload["digest"]

    def test_minimize_drops_irrelevant_parts(self):
        scenario = generate_scenario(1)
        assert len(scenario.faults) > 1
        culprit = scenario.faults[-1]

        def still_fails(s):
            return culprit in s.faults

        small = minimize(scenario, still_fails=still_fails)
        assert small.faults == [culprit]
        assert small.workload == []

    def test_committed_corpus_replays_clean(self):
        from pathlib import Path

        corpus_path = Path(__file__).parent / "data" / "fuzz_corpus.json"
        corpus = json.loads(corpus_path.read_text())
        for seed in corpus["seeds"]:
            result = run_scenario(generate_scenario(seed))
            assert result.ok, (seed, result.verdicts["violations"])


# ----------------------------------------------------------------------
# Purity: checking must never perturb the network
# ----------------------------------------------------------------------
class TestPurity:
    def test_snapshot_leaves_counters_untouched(self):
        platform = _bare_ring()
        net = platform.net
        h2 = net.hosts["h2"]
        _install(net, "s1", Match(eth_dst=h2.mac),
                 net.port_of("s1", "s2"))
        before = {
            "stats": {n: net.switches[n].stats() for n in net.switches},
            "lookups": {
                n: [t.lookup_count for t in net.switches[n].tables]
                for n in net.switches
            },
            "events": net.sim.events_processed,
        }
        NetworkSnapshot.capture(net)
        NetworkChecker().check(net)
        after = {
            "stats": {n: net.switches[n].stats() for n in net.switches},
            "lookups": {
                n: [t.lookup_count for t in net.switches[n].tables]
                for n in net.switches
            },
            "events": net.sim.events_processed,
        }
        assert before == after

    def test_monitor_does_not_perturb_the_run(self):
        # Same seed, faults firing, monitor on vs off: every observable
        # — including the kernel's event count — must be bit-identical.
        scenario = generate_scenario(1)
        assert scenario.faults
        off = run_scenario(scenario, monitor=False)
        on = run_scenario(scenario, monitor=True)
        assert on.observables == off.observables
        assert on.verdicts == off.verdicts
        # The monitor did actually run and see the transient failures.
        assert on.monitor_failures
