"""Online invariant monitoring under fault injection.

The monitor re-checks at the exact injection instant — before the
control plane has reacted — so transient blackholes that a
convergence-time-only audit would miss are visible, and the
convergence-event triggers (switch enter, resync done) prove they
cleared.  Every scenario here ends with a clean network: the point is
the *transient* window, not a lasting break.
"""

from repro.core import ZenPlatform
from repro.faults import FaultSchedule
from repro.netem import Topology

from repro.check import InvariantMonitor, NetworkChecker


def _monitored(topology, profile, seed=3):
    platform = ZenPlatform(topology, profile=profile, seed=seed).start()
    net = platform.net
    for a in net.hosts.values():
        for b in net.hosts.values():
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    monitor = InvariantMonitor(net).attach(platform.controller)
    schedule = FaultSchedule(net)
    monitor.watch(schedule)
    return platform, monitor, schedule


def _warm(platform, pairs):
    """Drive one packet each way so routes actually get installed."""
    net = platform.net
    for src, dst in pairs:
        net.sim.schedule_at(
            net.sim.now + 0.2, net.hosts[src].send_udp,
            net.hosts[dst].ip, 1, 2, b"warm",
        )
    platform.run(1.0)


def test_link_cut_causes_transient_blackhole_then_clears():
    platform, monitor, schedule = _monitored(
        Topology.ring(4, hosts_per_switch=1), "proactive"
    )
    _warm(platform, [("h1", "h3"), ("h3", "h1")])
    net = platform.net
    assert NetworkChecker().check(net).ok  # converged and clean

    schedule.link_down(net.sim.now + 0.5, "s1", "s2")
    schedule.link_up(net.sim.now + 2.5, "s1", "s2")
    platform.run(5.0)

    # At the injection instant the proactive routes still point at the
    # now-dead port: the monitor must flag that window.
    assert monitor.saw_violation(kind="dead_port",
                                 trigger_prefix="fault:link_down")
    # By the time the link came back, the network had healed.
    restore = [r for r in monitor.records
               if r.trigger.startswith("fault:link_up")]
    assert restore and restore[-1].result.ok
    assert NetworkChecker().check(net).ok


def test_switch_crash_flags_punt_dead_until_resync():
    platform, monitor, schedule = _monitored(
        Topology.linear(3, hosts_per_switch=1), "proactive"
    )
    _warm(platform, [("h1", "h3"), ("h3", "h1")])
    net = platform.net

    schedule.switch_crash(net.sim.now + 0.5, "s2", restart_after=1.0)
    platform.run(5.0)

    # Crash wipes the tables and drops the channel: probes through s2
    # miss and cannot even punt — a blackhole, not a benign punt.
    assert monitor.saw_violation(kind="punt_dead",
                                 trigger_prefix="fault:switch_crash")
    # The reconnect reconciliation both happened and re-checked clean.
    resynced = [r for r in monitor.records
                if r.trigger.startswith("resync-done:")]
    assert resynced and all(r.result.ok for r in resynced)
    assert platform.controller.resyncs >= 1
    assert NetworkChecker().check(net).ok


def test_channel_outage_downgrades_punts_to_blackholes():
    # Bare profile: every probe is a table miss that punts.  With the
    # channel up that is benign; during an outage it is a blackhole.
    platform, monitor, schedule = _monitored(
        Topology.ring(3, hosts_per_switch=1), "bare"
    )
    net = platform.net
    assert NetworkChecker().check(net).ok

    schedule.channel_down(net.sim.now + 0.5, "s1")
    schedule.channel_up(net.sim.now + 2.0, "s1")
    platform.run(4.0)

    assert monitor.saw_violation(kind="punt_dead",
                                 trigger_prefix="fault:channel_down")
    reconnect = [r for r in monitor.records
                 if r.trigger.startswith("fault:channel_up")]
    assert reconnect and reconnect[-1].result.ok
    assert NetworkChecker().check(net).ok


def test_monitor_history_is_bounded():
    platform, monitor, _ = _monitored(
        Topology.single(2), "bare"
    )
    monitor.max_records = 4
    for i in range(10):
        monitor.recheck(f"manual:{i}")
    assert len(monitor.records) == 4
    assert monitor.records[-1].trigger == "manual:9"
    assert monitor.checks_run >= 10
