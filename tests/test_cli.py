"""CLI smoke tests (argument handling and end-to-end demo runs)."""

import pytest

from repro.cli import build_topology, main


class TestBuildTopology:
    @pytest.mark.parametrize("name", [
        "linear", "single", "ring", "star", "tree", "fat_tree",
        "mesh", "waxman", "carrier_wan",
    ])
    def test_every_builder_validates(self, name):
        topo = build_topology(name, 4, 1e9)
        topo.validate()

    def test_carrier_wan_tiers(self):
        topo = build_topology("carrier_wan", 4, 1e9)
        names = {node.name for node in topo.switches}
        assert {"core0", "core1", "core2", "core3"} <= names
        assert any(n.startswith("m") for n in names)
        assert any(n.startswith("a") for n in names)
        assert topo.hosts

    def test_fat_tree_size_rounded_to_even(self):
        topo = build_topology("fat_tree", 3, 1e9)
        assert len(topo.switches) == 20  # k=4

    def test_unknown_name_exits(self):
        with pytest.raises(SystemExit):
            build_topology("donut", 4, 1e9)


class TestCommands:
    def test_demo_succeeds_on_ring(self, capsys):
        code = main(["demo", "--topology", "ring", "--size", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "All-pairs ping delivery: 100%" in out
        assert "Per-switch state" in out

    def test_demo_reactive_profile(self, capsys):
        code = main(["demo", "--topology", "single", "--size", "3",
                     "--profile", "reactive"])
        assert code == 0
        assert "100%" in capsys.readouterr().out

    def test_demo_is_deterministic(self, capsys):
        main(["demo", "--topology", "linear", "--size", "3",
              "--seed", "5"])
        first = capsys.readouterr().out
        main(["demo", "--topology", "linear", "--size", "3",
              "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_topology_description(self, capsys):
        code = main(["topology", "fat_tree", "--size", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "32 switch-to-switch" in out

    def test_bench_listing(self, capsys):
        code = main(["bench"])
        out = capsys.readouterr().out
        assert code == 0
        for exp_id in ("E1", "E10", "A2"):
            assert exp_id in out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
