"""Distributed controller cluster: election, roles, handover, faults.

Covers the cluster control plane end to end: rendezvous mastership and
leader election, the east-west bus (membership epochs, quorum doctrine,
partitions), ZOF role semantics on the switch side (PRIMARY demotion,
SLAVE mutation refusal, generation fencing), mastership handover on
controller crash/restart and partition/heal, replication convergence,
the cluster invariant checker, FaultSchedule's controller kinds, and
the obs handover SLO wiring.
"""

import pytest

from repro.check import check_cluster
from repro.cluster import (
    ControllerCluster,
    EastWestBus,
    ZenCluster,
    assign_masters,
    dataplane_digest,
    elect_leader,
    rendezvous_score,
)
from repro.errors import TopologyError
from repro.faults import FaultSchedule
from repro.netem import Topology
from repro.sim import Simulator
from repro.southbound import ControllerRole


def ring_cluster(controllers=3, size=4, profile="proactive", seed=7,
                 **kwargs):
    platform = ZenCluster(Topology.ring(size, hosts_per_switch=1),
                          controllers=controllers, profile=profile,
                          seed=seed, **kwargs)
    platform.start()
    return platform


# ----------------------------------------------------------------------
# Election
# ----------------------------------------------------------------------
class TestElection:
    def test_assignment_deterministic(self):
        members = [0, 1, 2]
        dpids = [1, 2, 3, 4, 5]
        assert assign_masters(members, dpids, seed=9) == \
            assign_masters(members, dpids, seed=9)

    def test_assignment_pure_function_of_member_set(self):
        dpids = list(range(1, 9))
        a = assign_masters([2, 0, 1], dpids, seed=3)
        b = assign_masters([1, 2, 0], dpids, seed=3)
        assert a == b

    def test_assignment_covers_every_switch(self):
        got = assign_masters([0, 1, 2], [1, 2, 3, 4], seed=0)
        assert sorted(got) == [1, 2, 3, 4]
        assert set(got.values()) <= {0, 1, 2}

    def test_empty_member_set_assigns_nothing(self):
        assert assign_masters([], [1, 2], seed=0) == {}

    def test_member_removal_only_moves_its_switches(self):
        """Rendezvous hashing: dropping one member never reshuffles
        switches owned by the survivors."""
        dpids = list(range(1, 21))
        full = assign_masters([0, 1, 2], dpids, seed=5)
        without_2 = assign_masters([0, 1], dpids, seed=5)
        for dpid, owner in full.items():
            if owner != 2:
                assert without_2[dpid] == owner

    def test_seed_changes_assignment(self):
        dpids = list(range(1, 33))
        assert assign_masters([0, 1, 2], dpids, seed=0) != \
            assign_masters([0, 1, 2], dpids, seed=1)

    def test_leader_stable_and_member(self):
        assert elect_leader([0, 1, 2], seed=4) == \
            elect_leader([2, 1, 0], seed=4)
        assert elect_leader([0, 1, 2], seed=4) in (0, 1, 2)

    def test_scores_distinct_per_member(self):
        scores = {rendezvous_score(0, m, 7) for m in range(16)}
        assert len(scores) == 16


# ----------------------------------------------------------------------
# East-west bus
# ----------------------------------------------------------------------
class _Member:
    def __init__(self, node_id):
        self.node_id = node_id
        self.changes = 0
        self.syncs = 0

    def on_membership_sync(self):
        self.syncs += 1

    def on_membership_change(self):
        self.changes += 1


def bus_of(n=3, detect_delay=0.05):
    sim = Simulator()
    bus = EastWestBus(sim, detect_delay=detect_delay)
    members = [_Member(i) for i in range(n)]
    for member in members:
        bus.register(member)
    return sim, bus, members


class TestBus:
    def test_crash_notifies_after_detect_delay(self):
        sim, bus, members = bus_of()
        bus.crash(2)
        assert members[0].changes == 0
        sim.run(0.1)
        assert members[0].changes == 1
        assert 2 not in bus.alive

    def test_sync_runs_before_change_on_every_node(self):
        sim, bus, members = bus_of()
        bus.crash(1)
        sim.run(0.1)
        for m in (members[0], members[2]):
            assert m.syncs == 1 and m.changes == 1

    def test_coalesced_churn_notifies_once(self):
        sim, bus, members = bus_of()
        bus.crash(1)
        bus.restart(1)
        bus.crash(2)
        sim.run(0.2)
        # Three bumps, but only the final epoch's notification runs.
        assert members[0].changes == 1

    def test_quorum_majority(self):
        sim, bus, _ = bus_of(3)
        bus.partition([[0, 1], [2]])
        sim.run(0.1)
        assert bus.has_quorum(0) and bus.has_quorum(1)
        assert not bus.has_quorum(2)

    def test_exact_half_tie_goes_to_min_id_side(self):
        sim, bus, _ = bus_of(4)
        bus.partition([[0, 3], [1, 2]])
        sim.run(0.1)
        assert bus.has_quorum(0) and bus.has_quorum(3)
        assert not bus.has_quorum(1) and not bus.has_quorum(2)

    def test_crashed_node_leaves_denominator(self):
        """Quorum doctrine: a *crash* is detected as a crash, so the
        two survivors of a 3-node cluster still hold quorum even when
        they subsequently split 1|1 (tie to min id)."""
        sim, bus, _ = bus_of(3)
        bus.crash(2)
        sim.run(0.1)
        assert bus.has_quorum(0) and bus.has_quorum(1)
        bus.partition([[0], [1]])
        sim.run(0.1)
        assert bus.has_quorum(0)
        assert not bus.has_quorum(1)

    def test_send_respects_partition(self):
        sim, bus, members = bus_of(3)

        received = []
        members[2].on_ew_message = (
            lambda src, kind, payload: received.append((src, kind))
        )
        bus.partition([[0], [1, 2]])
        sim.run(0.1)
        assert not bus.send(0, 2, "ping", None)
        assert bus.send(1, 2, "ping", None)
        assert received == [(1, "ping")]
        bus.heal()
        sim.run(0.1)
        assert bus.send(0, 2, "ping", None)


# ----------------------------------------------------------------------
# Switch-side role semantics
# ----------------------------------------------------------------------
class TestRoles:
    def test_one_primary_agent_per_switch(self):
        platform = ring_cluster()
        for name in platform.net.switches:
            primaries = [
                a for a in platform.net.agents_of(name)
                if a.controller_role == ControllerRole.PRIMARY
            ]
            assert len(primaries) == 1, name

    def test_masters_hold_primary_slaves_secondary(self):
        platform = ring_cluster()
        for name, dp in platform.net.switches.items():
            master = platform.cluster.master_of(dp.dpid)
            agents = platform.net.agents_of(name)
            for node_id, agent in enumerate(agents):
                expect = (ControllerRole.PRIMARY if node_id == master
                          else ControllerRole.SECONDARY)
                assert agent.controller_role == expect

    def test_slave_mutations_refused(self):
        from repro.dataplane import Match, Output
        from repro.southbound import Error, FlowMod

        platform = ring_cluster()
        dp = platform.net.switch("s1")
        master = platform.cluster.master_of(dp.dpid)
        slave = next(n for n in range(3) if n != master)
        node = platform.node(slave)
        handle = node.handles[dp.dpid]
        errors = []
        node.subscribe_errors = None  # not an API; capture via channel
        channel = platform.net.channel(f"s1#{slave}")
        previous = channel.controller_end.handler

        def tap(msg):
            if isinstance(msg, Error):
                errors.append(msg)
            previous(msg)

        channel.controller_end.handler = tap
        flows_before = sum(len(t) for t in dp.tables)
        handle.send(FlowMod(
            match=Match(eth_type=0x0800), actions=[Output(1)],
            priority=7,
        ))
        platform.run(0.1)
        assert sum(len(t) for t in dp.tables) == flows_before
        assert any(e.code == Error.BAD_ROLE for e in errors)

    def test_slave_gets_no_packet_in(self):
        platform = ring_cluster(profile="reactive")
        platform.ping_all(count=1, settle=5.0)
        for node in platform.cluster.controllers:
            learning = platform.learnings[node.node_id]
            # A node's MAC tables only ever cover switches it mastered.
            for dpid in learning.mac_tables:
                assert platform.cluster.master_of(dpid) == node.node_id


# ----------------------------------------------------------------------
# Handover on crash / restart
# ----------------------------------------------------------------------
class TestHandover:
    def test_crash_reassigns_all_owned_switches(self):
        platform = ring_cluster()
        cluster = platform.cluster
        victim = cluster.master_of(1)
        owned = set(cluster.node(victim).switches)
        cluster.crash_node(victim)
        platform.run(1.0)
        masters = cluster.masters()
        for dpid in owned:
            assert masters[dpid] and masters[dpid][0] != victim
        assert {r.dpid for r in cluster.handover_log} == owned

    def test_handover_bumps_terms(self):
        platform = ring_cluster()
        cluster = platform.cluster
        victim = cluster.master_of(1)
        cluster.crash_node(victim)
        platform.run(1.0)
        for record in cluster.handover_log:
            assert record.term >= 2
            survivor = cluster.node(record.new_node)
            assert survivor.terms[record.dpid] == record.term

    def test_failover_completion_hook_measures_detect_delay(self):
        platform = ring_cluster(detect_delay=0.2)
        cluster = platform.cluster
        done = []
        cluster.on_failover_complete.append(
            lambda node_id, elapsed: done.append((node_id, elapsed))
        )
        victim = cluster.master_of(1)
        cluster.crash_node(victim)
        platform.run(1.0)
        assert len(done) == 1
        node_id, elapsed = done[0]
        assert node_id == victim
        assert elapsed == pytest.approx(0.2, abs=1e-6)

    def test_dataplane_survives_crash(self):
        platform = ring_cluster()
        victim = platform.cluster.master_of(1)
        platform.cluster.crash_node(victim)
        platform.run(1.0)
        assert platform.ping_all(count=1, settle=8.0) == 1.0
        assert not check_cluster(platform.cluster, platform.net)

    def test_restart_rejoins_and_rebalances(self):
        platform = ring_cluster()
        cluster = platform.cluster
        before = {d: m[0] for d, m in cluster.masters().items()}
        victim = cluster.master_of(1)
        cluster.crash_node(victim)
        platform.run(1.0)
        cluster.restart_node(victim)
        platform.run(1.0)
        # Same member set again => rendezvous lands the same way.
        after = {d: m[0] for d, m in cluster.masters().items()}
        assert after == before
        assert platform.ping_all(count=1, settle=8.0) == 1.0
        assert not check_cluster(platform.cluster, platform.net)

    def test_restarted_node_resyncs_ledger_before_adopting(self):
        platform = ring_cluster()
        cluster = platform.cluster
        platform.ping_all(count=1, settle=8.0)  # populate intents
        victim = cluster.master_of(1)
        reference = {
            dpid: dict(cluster.node(victim)._ledger.get(dpid, {}))
            for dpid in cluster.dpids
        }
        cluster.crash_node(victim)
        platform.run(1.0)
        assert cluster.node(victim)._ledger == {}  # wiped
        cluster.restart_node(victim)
        platform.run(1.0)
        rejoined = cluster.node(victim)._ledger
        for dpid, flows in reference.items():
            assert set(rejoined.get(dpid, {})) == set(flows), dpid

    def test_all_but_one_crash_single_survivor_owns_fabric(self):
        platform = ring_cluster()
        cluster = platform.cluster
        cluster.crash_node(1)
        platform.run(0.5)
        cluster.crash_node(2)
        platform.run(0.5)
        masters = cluster.masters()
        assert all(m == [0] for m in masters.values())
        assert platform.ping_all(count=1, settle=8.0) == 1.0


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
class TestPartition:
    def test_minority_self_demotes(self):
        platform = ring_cluster()
        cluster = platform.cluster
        cluster.partition([[0], [1, 2]])
        platform.run(0.5)
        assert cluster.node(0).switches == {}
        for dpid, claimants in cluster.masters().items():
            assert claimants and set(claimants) <= {1, 2}

    def test_no_dual_master_during_partition(self):
        platform = ring_cluster()
        cluster = platform.cluster
        cluster.partition([[0], [1, 2]])
        platform.run(0.5)
        assert not check_cluster(cluster, platform.net)

    def test_heal_restores_assignment_and_converges(self):
        platform = ring_cluster()
        cluster = platform.cluster
        before = {d: m[0] for d, m in cluster.masters().items()}
        cluster.partition([[0], [1, 2]])
        platform.run(0.5)
        platform.ping_all(count=1, settle=8.0)  # write under partition
        cluster.heal()
        platform.run(1.0)
        after = {d: m[0] for d, m in cluster.masters().items()}
        assert after == before
        assert not check_cluster(cluster, platform.net)

    def test_stale_master_fenced_by_term(self):
        platform = ring_cluster()
        cluster = platform.cluster
        dpid = 1
        old = cluster.master_of(dpid)
        cluster.partition([[old], [n for n in range(3) if n != old]])
        platform.run(0.5)
        new = cluster.master_of(dpid)
        assert new != old
        # The majority's adoption bumped the switch-side generation, so
        # the stale master's connection was demoted out from under it.
        name = next(n for n, dp in platform.net.switches.items()
                    if dp.dpid == dpid)
        stale_agent = platform.net.agents_of(name)[old]
        assert stale_agent.controller_role != ControllerRole.PRIMARY


# ----------------------------------------------------------------------
# Cluster invariant checker
# ----------------------------------------------------------------------
class TestCheckCluster:
    def test_clean_cluster_reports_no_violations(self):
        platform = ring_cluster()
        assert check_cluster(platform.cluster, platform.net) == []

    def test_detects_forged_dual_master(self):
        platform = ring_cluster()
        cluster = platform.cluster
        dpid = 1
        master = cluster.master_of(dpid)
        thief = next(n for n in range(3) if n != master)
        node = cluster.node(thief)
        node.switches[dpid] = node.handles[dpid]
        violations = check_cluster(cluster, platform.net)
        assert any(v.kind == "dual_master" for v in violations)

    def test_detects_orphaned_switch(self):
        platform = ring_cluster()
        cluster = platform.cluster
        dpid = 1
        master = cluster.master_of(dpid)
        cluster.node(master).switches.pop(dpid)
        violations = check_cluster(cluster, platform.net)
        assert any(v.kind == "orphaned_switch" for v in violations)

    def test_detects_ledger_divergence(self):
        platform = ring_cluster()
        platform.ping_all(count=1, settle=8.0)
        cluster = platform.cluster
        node = cluster.node(0)
        dpid = next(d for d in cluster.dpids if node._ledger.get(d))
        node._ledger[dpid].popitem()
        violations = check_cluster(cluster, platform.net)
        assert any(v.kind == "ledger_divergence" for v in violations)


# ----------------------------------------------------------------------
# FaultSchedule controller kinds
# ----------------------------------------------------------------------
class TestClusterFaults:
    def test_controller_kinds_require_attached_cluster(self):
        platform = ring_cluster()
        schedule = FaultSchedule(platform.net)
        with pytest.raises(TopologyError):
            schedule.controller_crash(platform.sim.now + 1.0, 0)

    def test_scripted_crash_hands_over_and_checks_clean(self):
        platform = ring_cluster()
        cluster = platform.cluster
        victim = cluster.master_of(1)
        schedule = FaultSchedule(platform.net).attach_cluster(cluster)
        schedule.controller_crash(platform.sim.now + 0.5, victim,
                                  restart_after=1.0)
        platform.run(3.0)
        kinds = [e.kind for e in schedule.log]
        assert kinds == ["controller_crash", "controller_restart"]
        assert cluster.handover_complete()
        assert cluster.handover_log
        assert not check_cluster(cluster, platform.net)
        assert platform.ping_all(count=1, settle=8.0) == 1.0

    def test_scripted_partition_heals_clean(self):
        platform = ring_cluster()
        cluster = platform.cluster
        schedule = FaultSchedule(platform.net).attach_cluster(cluster)
        schedule.controller_partition(platform.sim.now + 0.5,
                                      [[0], [1, 2]], heal_after=1.0)
        platform.run(3.0)
        kinds = [e.kind for e in schedule.log]
        assert kinds == ["controller_partition", "controller_heal"]
        assert not check_cluster(cluster, platform.net)
        assert platform.ping_all(count=1, settle=8.0) == 1.0

    def test_switch_crash_takes_down_every_instance_agent(self):
        platform = ring_cluster()
        schedule = FaultSchedule(platform.net)
        schedule.switch_crash(platform.sim.now + 0.2, "s1",
                              restart_after=0.5)
        platform.run(0.4)
        assert all(not a.channel.connected
                   for a in platform.net.agents_of("s1"))
        platform.run(2.0)
        assert all(a.channel.connected
                   for a in platform.net.agents_of("s1"))
        assert platform.ping_all(count=1, settle=8.0) == 1.0


# ----------------------------------------------------------------------
# Obs wiring: handover SLO
# ----------------------------------------------------------------------
class TestClusterObs:
    def test_handover_slo_measures_crash_to_adoption(self):
        from repro.obs import ObsPlane, handover_slo
        from repro.telemetry import Telemetry

        platform = ZenCluster(Topology.ring(4, hosts_per_switch=1),
                              controllers=3, seed=7,
                              telemetry=Telemetry())
        platform.start()
        cluster = platform.cluster
        slo = handover_slo(threshold=0.5)
        plane = ObsPlane(platform, interval=0.05, slos=[slo])
        plane.watch_cluster(cluster)
        schedule = FaultSchedule(platform.net).attach_cluster(cluster)
        plane.watch_faults(schedule)
        victim = cluster.master_of(1)
        schedule.controller_crash(platform.sim.now + 0.5, victim)
        platform.run(2.0)
        plane.finish()
        assert len(slo.measurements) == 1
        label, _, elapsed = slo.measurements[0]
        assert label == f"controller-{victim}"
        assert 0.0 < elapsed <= 0.5

    def test_handover_annotations_cover_moved_switches(self):
        from repro.obs import ObsPlane
        from repro.telemetry import Telemetry

        platform = ZenCluster(Topology.ring(4, hosts_per_switch=1),
                              controllers=3, seed=7,
                              telemetry=Telemetry())
        platform.start()
        cluster = platform.cluster
        plane = ObsPlane(platform, interval=0.05)
        plane.watch_cluster(cluster)
        victim = cluster.master_of(1)
        owned = set(cluster.node(victim).switches)
        cluster.crash_node(victim)
        platform.run(1.0)
        labels = {a.label for a in plane.scraper.annotations
                  if a.kind == "handover"}
        assert labels == {f"dpid-{d}" for d in owned}


# ----------------------------------------------------------------------
# Platform surface
# ----------------------------------------------------------------------
class TestZenCluster:
    def test_size_one_matches_single_controller_semantics(self):
        platform = ring_cluster(controllers=1)
        assert platform.cluster.size == 1
        assert platform.cluster.leader == 0
        assert platform.ping_all(count=1, settle=8.0) == 1.0

    def test_rejects_bad_profile_and_size(self):
        from repro.errors import ControllerError

        with pytest.raises(ControllerError):
            ZenCluster(Topology.ring(3), profile="nope")
        with pytest.raises(ValueError):
            ZenCluster(Topology.ring(3), controllers=0)

    def test_digest_excludes_control_plane(self):
        """Same workload, different cluster size: the dataplane digest
        must agree even though control-message counts differ."""
        digests = []
        overhead = []
        for n in (1, 3):
            platform = ring_cluster(controllers=n, seed=3)
            platform.ping_all(count=1, settle=8.0)
            digests.append(platform.dataplane_digest())
            overhead.append(platform.total_control_messages())
        assert digests[0] == digests[1]
        assert overhead[1] > overhead[0]

    def test_channel_lookup_falls_back_to_instance_zero(self):
        platform = ring_cluster()
        assert platform.net.channel("s1") is platform.net.channel("s1#0")
        assert platform.net.agent("s1") is platform.net.agents_of("s1")[0]
