"""The differential oracle: cluster size must be dataplane-invisible.

With zero faults, a seeded workload driven through ``controllers=N``
must leave the *dataplane* — every flow table, every datapath counter,
every host tx/rx — bit-identical to the ``controllers=1`` oracle run.
The control plane is allowed to differ (N instances exchange more
control messages programming the very same switches); the digest
deliberately excludes it.

This is the strongest statement the cluster design can make: mastership
partitioning, role gating, and east-west replication compose into a
system observationally equivalent to one controller, and any divergence
(a slave acting on a punt, a jittered probe drawing shared randomness,
replication echo installing a duplicate flow) breaks it loudly.
"""

import pytest

from repro.cluster import ZenCluster
from repro.netem import Topology


def drive(topology, controllers, profile, seed, workload_seed=99):
    """One seeded run; returns (dataplane digest, delivery ratio)."""
    import random

    platform = ZenCluster(topology, controllers=controllers,
                          profile=profile, seed=seed)
    platform.start()
    delivery = platform.ping_all(count=2, settle=5.0)
    # A seeded unicast mix on top of the full mesh: same streams for
    # every cluster size by construction.
    rng = random.Random(workload_seed)
    hosts = [platform.net.hosts[n] for n in sorted(platform.net.hosts)]
    for _ in range(12):
        src, dst = rng.sample(hosts, 2)
        delay = round(rng.uniform(0.05, 1.0), 3)
        platform.sim.schedule(
            delay,
            lambda s=src, d=dst: s.send_udp(d.ip, 7001, 7001, b"diff"),
        )
    platform.run(3.0)
    return platform.dataplane_digest(), delivery


CASES = [
    ("ring", 5, "proactive", 7),
    ("fat_tree", 2, "proactive", 11),
    ("star", 4, "reactive", 3),
]


def build(kind, size):
    if kind == "fat_tree":
        return Topology.fat_tree(size)
    if kind == "star":
        return Topology.star(size, hosts_per_leaf=1)
    return Topology.ring(size, hosts_per_switch=1)


class TestDifferentialOracle:
    @pytest.mark.parametrize("kind,size,profile,seed", CASES)
    def test_cluster_matches_single_controller_oracle(
            self, kind, size, profile, seed):
        oracle, delivered = drive(build(kind, size), 1, profile, seed)
        assert delivered == 1.0
        for n in (2, 3):
            digest, delivery = drive(build(kind, size), n, profile, seed)
            assert delivery == 1.0
            assert digest == oracle, (
                f"controllers={n} diverged from the oracle on "
                f"{kind}({size})/{profile}"
            )

    def test_oracle_is_reproducible(self):
        a = drive(build("ring", 5, ), 3, "proactive", 7)
        b = drive(build("ring", 5), 3, "proactive", 7)
        assert a == b

    def test_digest_sensitive_to_dataplane_state(self):
        """Sanity: the digest is not vacuous — different workloads
        produce different digests."""
        a, _ = drive(build("ring", 5), 1, "proactive", 7, workload_seed=1)
        b, _ = drive(build("ring", 5), 1, "proactive", 7, workload_seed=2)
        assert a != b
