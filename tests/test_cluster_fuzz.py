"""Cluster scenarios in the fuzz plane: generation, replay, corpus.

The cluster fuzz stream (``generate_cluster_scenario``) is seeded on a
distinct RNG stream from the classic generator, so every committed
single-controller corpus digest is untouched; the corpus file gains an
additive ``cluster_seeds`` key whose scenarios exercise controller
crashes and east-west partitions and must check clean — including the
cluster invariants, which join the pass criterion for ``controllers >
1``.
"""

import json
from pathlib import Path

from repro.check import generate_cluster_scenario, generate_scenario
from repro.check.fuzzer import Scenario, result_digest, run_scenario

DATA = Path(__file__).parent / "data"

_CLUSTER_KINDS = {"link_flap", "channel_flap", "controller_crash",
                  "controller_partition"}


class TestGeneration:
    def test_pure_function_of_seed(self):
        for seed in range(6):
            assert generate_cluster_scenario(seed).to_dict() == \
                generate_cluster_scenario(seed).to_dict()

    def test_distinct_stream_from_classic_generator(self):
        assert generate_cluster_scenario(0).to_dict() != \
            generate_scenario(0).to_dict()

    def test_only_cluster_safe_fault_kinds(self):
        for seed in range(12):
            scenario = generate_cluster_scenario(seed)
            assert scenario.controllers >= 2
            for fault in scenario.faults:
                assert fault["kind"] in _CLUSTER_KINDS

    def test_roundtrips_through_dict(self):
        scenario = generate_cluster_scenario(4)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.to_dict() == scenario.to_dict()
        assert clone.controllers == scenario.controllers

    def test_single_controller_dict_has_no_controllers_key(self):
        """Committed corpus digests depend on this: classic scenarios
        serialise exactly as before the cluster plane existed."""
        assert "controllers" not in generate_scenario(0).to_dict()
        assert "controllers" in generate_cluster_scenario(0).to_dict()


class TestReplay:
    def test_cluster_scenario_runs_bit_identically(self):
        scenario = generate_cluster_scenario(1)
        assert result_digest(run_scenario(scenario)) == \
            result_digest(run_scenario(scenario))

    def test_monitor_on_vs_off_bit_identity(self):
        """The invariant monitor must not perturb a cluster run: every
        observable and every verdict is bit-identical with and without
        it attached — its checks are read-only snapshots.  (The
        ``monitor_failures`` record itself may be non-empty: checks run
        while a controller is down legitimately see transients.)"""
        for seed in (0, 2):
            scenario = generate_cluster_scenario(seed)
            plain = run_scenario(scenario)
            watched = run_scenario(scenario, monitor=True)
            assert plain.ok and watched.ok
            assert plain.observables == watched.observables, seed
            assert plain.verdicts == watched.verdicts, seed

    def test_verdicts_carry_cluster_violations_key(self):
        result = run_scenario(generate_cluster_scenario(0))
        assert result.verdicts["cluster_violations"] == []
        classic = run_scenario(generate_scenario(0))
        assert "cluster_violations" not in classic.verdicts


class TestCorpus:
    def test_corpus_keeps_original_seeds(self):
        corpus = json.loads((DATA / "fuzz_corpus.json").read_text())
        assert corpus["seeds"] == [0, 1, 2, 3, 5, 8]
        assert corpus["cluster_seeds"]

    def test_committed_cluster_corpus_replays_clean(self):
        corpus = json.loads((DATA / "fuzz_corpus.json").read_text())
        for seed in corpus["cluster_seeds"]:
            result = run_scenario(generate_cluster_scenario(seed))
            assert result.ok, (
                seed,
                result.verdicts.get("cluster_violations")
                or result.verdicts["violations"],
            )
