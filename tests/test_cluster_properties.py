"""Property tests for election and mastership safety (hypothesis).

Three properties the cluster design hangs on:

* the mastership assignment is a *pure function* of (member set, seed)
  — order of membership, history, and churn path are irrelevant;
* any crash/restart sequence that ends at the same member set ends at
  the same assignment (path independence on a live cluster);
* across any interleaving of controller crashes, restarts, partitions,
  and heals, no two mutually-reachable instances ever claim the same
  switch, and no datapath ever holds two PRIMARY connections.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check import check_cluster
from repro.cluster import ZenCluster, assign_masters, elect_leader
from repro.netem import Topology

MEMBERS = st.sets(st.integers(min_value=0, max_value=9),
                  min_size=1, max_size=6)
DPIDS = st.sets(st.integers(min_value=1, max_value=40),
                min_size=1, max_size=12)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


# ----------------------------------------------------------------------
# Pure-function properties of the election itself
# ----------------------------------------------------------------------
class TestElectionProperties:
    @given(members=MEMBERS, dpids=DPIDS, seed=SEEDS)
    @settings(max_examples=200, deadline=None)
    def test_assignment_pure_function_of_member_set_and_seed(
            self, members, dpids, seed):
        ordered = sorted(members)
        shuffled = list(reversed(ordered))
        assert assign_masters(ordered, sorted(dpids), seed) == \
            assign_masters(shuffled, sorted(dpids), seed)

    @given(members=MEMBERS, dpids=DPIDS, seed=SEEDS)
    @settings(max_examples=200, deadline=None)
    def test_assignment_total_and_closed(self, members, dpids, seed):
        got = assign_masters(members, dpids, seed)
        assert set(got) == set(dpids)
        assert set(got.values()) <= set(members)

    @given(members=st.sets(st.integers(0, 9), min_size=2, max_size=6),
           dpids=DPIDS, seed=SEEDS)
    @settings(max_examples=200, deadline=None)
    def test_removal_never_moves_survivors_switches(
            self, members, dpids, seed):
        full = assign_masters(members, dpids, seed)
        gone = sorted(members)[-1]
        shrunk = assign_masters(members - {gone}, dpids, seed)
        for dpid, owner in full.items():
            if owner != gone:
                assert shrunk[dpid] == owner

    @given(members=MEMBERS, seed=SEEDS)
    @settings(max_examples=200, deadline=None)
    def test_leader_is_a_member_and_order_free(self, members, seed):
        leader = elect_leader(members, seed)
        assert leader in members
        assert elect_leader(sorted(members, reverse=True), seed) == leader


# ----------------------------------------------------------------------
# Live-cluster path independence
# ----------------------------------------------------------------------
def _cluster(seed=7):
    platform = ZenCluster(Topology.ring(4, hosts_per_switch=1),
                          controllers=3, seed=seed)
    platform.start()
    return platform


# Each op is (node, crash_then_restart_delay); applying them in any
# order with arbitrary settling returns to the full member set.
CHURN = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.floats(min_value=0.1, max_value=0.6)),
    min_size=1, max_size=3,
)


class TestPathIndependence:
    @given(ops=CHURN)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_member_set_reaches_same_assignment(self, ops):
        platform = _cluster()
        cluster = platform.cluster
        baseline = {d: m[0] for d, m in cluster.masters().items()}
        for node, delay in ops:
            cluster.crash_node(node)
            platform.run(delay)
            cluster.restart_node(node)
            platform.run(delay)
        platform.run(1.0)
        final = {d: m[0] for d, m in cluster.masters().items()}
        assert final == baseline
        assert not check_cluster(cluster, platform.net)


# One fault-plane step: crash/restart a node, or partition/heal the
# bus, then advance sim time by an arbitrary (possibly sub-detection)
# amount so notifications interleave every possible way.
STEPS = st.lists(
    st.tuples(
        st.sampled_from(["crash", "restart", "partition", "heal"]),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=0.3),
    ),
    min_size=1, max_size=6,
)


class TestNoDualMaster:
    @given(steps=STEPS)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_no_two_masters_across_any_interleaving(self, steps):
        platform = _cluster()
        cluster = platform.cluster

        def assert_single_master():
            bad = [v for v in check_cluster(cluster, platform.net)
                   if v.invariant == "single-master"]
            assert not bad, bad

        for op, node, dt in steps:
            if op == "crash":
                cluster.crash_node(node)
            elif op == "restart":
                cluster.restart_node(node)
            elif op == "partition":
                rest = [n for n in range(3) if n != node]
                cluster.partition([[node], rest])
            else:
                cluster.heal()
            assert_single_master()
            if dt:
                platform.run(dt)
            assert_single_master()

        # Recover everything and require full convergence, not just
        # safety: heal, restart the dead, settle past detection.
        cluster.heal()
        for node in range(3):
            cluster.restart_node(node)
        platform.run(1.0)
        assert not check_cluster(cluster, platform.net)
