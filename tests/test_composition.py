"""The kitchen-sink composition test: four apps, four flow tables.

    table 0: slicing (classify + meter)  -> goto 1
    table 1: firewall ACLs               -> goto 2
    table 2: LB VIP rewrite              -> goto 3
    table 3: ECMP multipath routing

on a star topology with three departments — the full enterprise stack
from examples/enterprise_policy.py, with assertions instead of prose.
"""

import pytest

from repro.apps import (
    Firewall,
    LoadBalancer,
    MultipathRouter,
    NetworkSlicing,
)
from repro.core import ZenPlatform
from repro.netem import CBRStream, FlowSink, Topology
from repro.packet import IPv4, UDP

VIP = "10.0.50.1"
SERVERS = ("10.0.0.5", "10.0.0.6")


@pytest.fixture(scope="module")
def stack():
    topo = Topology.star(3, hosts_per_leaf=2, bandwidth_bps=100e6)
    platform = ZenPlatform(topo, profile="bare", num_tables=4)
    slicing = platform.add_app(NetworkSlicing(table_id=0, next_table=1))
    firewall = platform.add_app(Firewall(table_id=1, next_table=2))
    balancer = platform.add_app(LoadBalancer(
        vip=VIP, backends=list(SERVERS), table_id=2, next_table=3))
    platform.router = platform.add_app(MultipathRouter(table_id=3))
    platform.start()
    hosts = {n: platform.host(n) for n in
             ("h1", "h2", "h3", "h4", "h5", "h6")}
    for a in hosts.values():
        for b in hosts.values():
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for h in hosts.values():
        peer = hosts["h1"] if h is not hosts["h1"] else hosts["h2"]
        h.send_udp(peer.ip, 7, 7, b"warm")
    platform.run(2.0)
    slicing.define_slice("engineering",
                         [hosts["h1"].ip, hosts["h2"].ip], 20e6)
    slicing.define_slice("guests",
                         [hosts["h3"].ip, hosts["h4"].ip], 5e6)
    for guest in ("10.0.0.3", "10.0.0.4"):
        for service_ip in (VIP, *SERVERS):
            firewall.allow(priority=2000, ip_src=guest,
                           ip_dst=service_ip, eth_type=0x0800)
        firewall.deny(priority=1000, ip_src=guest, eth_type=0x0800)
    platform.run(0.5)

    def service(pkt, host):
        udp = pkt[UDP]
        host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port, b"ok")

    for server in ("h5", "h6"):
        hosts[server].bind_udp(8080, service)
    return platform, hosts, balancer


class TestEnterpriseComposition:
    def test_engineering_reaches_everything(self, stack):
        platform, hosts, _ = stack
        session = hosts["h1"].ping(hosts["h5"].ip, count=3,
                                   interval=0.1)
        platform.run(3.0)
        assert session.received == 3

    def test_guests_blocked_from_engineering(self, stack):
        platform, hosts, _ = stack
        session = hosts["h3"].ping(hosts["h1"].ip, count=3,
                                   interval=0.1, timeout=1.0)
        platform.run(5.0)
        assert session.received == 0

    def test_guests_reach_the_vip_balanced(self, stack):
        platform, hosts, balancer = stack
        answers = []
        hosts["h3"].on_udp = lambda pkt, host: answers.append(1)
        hosts["h4"].on_udp = lambda pkt, host: answers.append(1)
        before = dict(balancer.assignments)
        for i in range(8):
            hosts["h3"].send_udp(VIP, 43000 + i, 8080, b"req")
            hosts["h4"].send_udp(VIP, 44000 + i, 8080, b"req")
            platform.run(0.2)
        platform.run(2.0)
        assert len(answers) == 16
        new = {ip: balancer.assignments[ip] - before.get(ip, 0)
               for ip in balancer.assignments}
        assert all(n > 0 for n in new.values())  # both backends used

    def test_guest_slice_metered(self, stack):
        platform, hosts, _ = stack
        # Whitelist the blast so only the meter constrains it.
        firewall = platform.controller.get_app(Firewall)
        firewall.allow(priority=3000, ip_src=str(hosts["h3"].ip),
                       ip_dst=str(hosts["h5"].ip), eth_type=0x0800)
        platform.run(0.5)
        sink = FlowSink(hosts["h5"], 9500)
        CBRStream(hosts["h3"], hosts["h5"].ip, rate_bps=50e6,
                  packet_size=1000, duration=3.0, dst_port=9500)
        platform.run(4.0)
        delivered_bps = sink.total_bytes * 8 / 3.0
        assert delivered_bps < 8e6  # clamped near the 5 Mb/s cap

    def test_engineering_slice_not_starved_by_guests(self, stack):
        platform, hosts, _ = stack
        sink = FlowSink(hosts["h2"], 9600)
        CBRStream(hosts["h1"], hosts["h2"].ip, rate_bps=15e6,
                  packet_size=1000, duration=3.0, dst_port=9600)
        platform.run(4.0)
        delivered_bps = sink.total_bytes * 8 / 3.0
        assert delivered_bps > 12e6  # under its 20 Mb/s cap, unharmed

    def test_pipeline_tables_populated_as_designed(self, stack):
        platform, hosts, _ = stack
        dp = platform.switch("hub")
        # Table 0: slice classifiers + default; table 1: ACLs +
        # default; table 2: LB default (+ conn rules at leaves);
        # table 3: routing.
        assert len(dp.tables[0]) >= 5   # 4 members + default
        assert len(dp.tables[1]) >= 9   # 8 allows + 2 denies + default
        assert len(dp.tables[2]) >= 1
        assert len(dp.tables[3]) >= 6   # one dst rule per host
