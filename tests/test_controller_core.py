"""Controller core: handshake, handles, event bus, compute model."""

import pytest

from repro.controller import (
    Controller,
    PacketInEvent,
    PortStatusEvent,
    SwitchEnter,
    SwitchLeave,
)
from repro.controller.core import App
from repro.dataplane import Datapath, Match, Output
from repro.errors import ControllerError
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator
from repro.southbound import ControlChannel, SwitchAgent


def build(n_switches=1, latency=0.001, service_time=0.0):
    sim = Simulator()
    controller = Controller(sim, packet_in_service_time=service_time)
    datapaths = []
    channels = []
    for i in range(n_switches):
        dp = Datapath(i + 1, sim)
        dp.add_port(1)
        dp.add_port(2)
        channel = ControlChannel(sim, latency=latency)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        datapaths.append(dp)
        channels.append(channel)
    sim.run_until_idle()
    return sim, controller, datapaths, channels


def udp_packet():
    return (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
            / IPv4(src="10.0.0.1", dst="10.0.0.2")
            / UDP(src_port=1, dst_port=2) / b"x")


class TestHandshake:
    def test_switches_enter_after_handshake(self):
        sim, controller, dps, _ = build(n_switches=3)
        assert controller.switch_count == 3
        assert {h.dpid for h in controller.switches.values()} == {1, 2, 3}
        handle = controller.switch(1)
        assert set(handle.ports) == {1, 2}
        assert handle.num_tables == len(dps[0].tables)

    def test_switch_enter_event_published(self):
        sim = Simulator()
        controller = Controller(sim)
        entered = []
        controller.subscribe(SwitchEnter,
                             lambda ev: entered.append(ev.switch.dpid))
        dp = Datapath(7, sim)
        dp.add_port(1)
        channel = ControlChannel(sim)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        sim.run_until_idle()
        assert entered == [7]

    def test_disconnect_publishes_switch_leave(self):
        sim, controller, dps, channels = build()
        left = []
        controller.subscribe(SwitchLeave, lambda ev: left.append(ev.dpid))
        channels[0].disconnect()
        sim.run_until_idle()
        assert left == [1]
        assert controller.switch_count == 0
        with pytest.raises(ControllerError):
            controller.switch(1)

    def test_send_on_disconnected_handle_raises(self):
        sim, controller, dps, channels = build()
        handle = controller.switch(1)
        channels[0].disconnect()
        with pytest.raises(ControllerError):
            handle.add_flow(Match(), [Output(1)])


class TestEventBus:
    def test_packet_in_event_carries_decoded_packet(self):
        sim, controller, dps, _ = build()
        events = []
        controller.subscribe(PacketInEvent, events.append)
        dps[0].inject(udp_packet(), 1)
        sim.run_until_idle()
        assert len(events) == 1
        assert events[0].in_port == 1
        assert events[0].packet[IPv4].dst == "10.0.0.2"
        assert events[0].reason == "no_match"

    def test_port_status_event_updates_handle(self):
        sim, controller, dps, _ = build()
        events = []
        controller.subscribe(PortStatusEvent, events.append)
        dps[0].set_port_state(2, False)
        sim.run_until_idle()
        assert events[0].port_no == 2 and events[0].up is False
        assert controller.switch(1).ports[2].up is False

    def test_multiple_subscribers_all_fire(self):
        sim, controller, dps, _ = build()
        hits = []
        controller.subscribe(PacketInEvent, lambda ev: hits.append("a"))
        controller.subscribe(PacketInEvent, lambda ev: hits.append("b"))
        dps[0].inject(udp_packet(), 1)
        sim.run_until_idle()
        assert hits == ["a", "b"]


class TestAppLifecycle:
    def test_late_app_sees_existing_switches(self):
        sim, controller, dps, _ = build(n_switches=2)

        class Recorder(App):
            name = "recorder"

            def __init__(self):
                super().__init__()
                self.seen = []

            def on_switch_enter(self, switch):
                self.seen.append(switch.dpid)

        app = controller.add_app(Recorder())
        assert sorted(app.seen) == [1, 2]

    def test_get_app_by_type(self):
        sim, controller, dps, _ = build()

        class Dummy(App):
            name = "dummy"

        app = controller.add_app(Dummy())
        assert controller.get_app(Dummy) is app
        assert controller.get_app(Controller) is None

    def test_unstarted_app_sim_raises(self):
        class Dummy(App):
            name = "dummy"

        with pytest.raises(ControllerError):
            Dummy().sim


class TestProgrammingSurface:
    def test_add_flow_reaches_datapath(self):
        sim, controller, dps, _ = build()
        controller.switch(1).add_flow(Match(eth_type=0x0800),
                                      [Output(2)], priority=9)
        sim.run_until_idle()
        assert dps[0].flow_count() == 1
        entry = dps[0].tables[0].entries()[0]
        assert entry.priority == 9

    def test_barrier_callback(self):
        sim, controller, dps, _ = build()
        fired = []
        controller.switch(1).barrier(lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert len(fired) == 1

    def test_packet_out_transmits(self):
        sim, controller, dps, _ = build()
        sent = []
        dps[0].transmit = lambda p, pkt: sent.append(p)
        controller.switch(1).packet_out(udp_packet(), [Output(2)])
        sim.run_until_idle()
        assert sent == [2]


class TestComputeModel:
    def test_service_time_queues_packet_ins(self):
        sim, controller, dps, _ = build(service_time=0.01)
        for _ in range(5):
            dps[0].inject(udp_packet(), 1)
        sim.run_until_idle()
        assert controller.packet_ins_handled == 5
        # The 5th packet waited behind four 10 ms services.
        assert max(controller.packet_in_delays) >= 0.04

    def test_zero_service_time_is_instant(self):
        sim, controller, dps, _ = build(service_time=0.0)
        dps[0].inject(udp_packet(), 1)
        sim.run_until_idle()
        assert controller.packet_in_delays == [0.0]
