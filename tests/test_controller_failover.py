"""Controller failover: switches reconnect to a standby controller.

The scenario every SDN deployment plans for: the controller dies, the
network keeps forwarding on its installed rules (headless mode), the
switches reconnect to a standby, and the standby rebuilds its view and
resumes managing.  This exercises channel teardown, handshake-on-
reconnect, re-discovery, and app state rebuild end to end.
"""


from repro.apps import ArpProxy, ProactiveRouter
from repro.controller import Controller, HostTracker, TopologyDiscovery
from repro.netem import Network, Topology
from repro.southbound import ControlChannel, SwitchAgent


def make_controller(net):
    controller = Controller(net.sim)
    controller.add_app(TopologyDiscovery(probe_interval=0.5,
                                         link_timeout=1.5))
    controller.add_app(HostTracker())
    controller.add_app(ArpProxy())
    router = controller.add_app(ProactiveRouter())
    return controller, router


class TestControllerFailover:
    def build(self):
        net = Network(Topology.ring(4, hosts_per_switch=1,
                                    bandwidth_bps=1e9))
        primary, router = make_controller(net)
        for name in net.switches:
            channel = net.make_channel(name)
            primary.accept_channel(channel)
            channel.connect()
        net.run(2.0)
        assert primary.switch_count == 4
        # Warm traffic so routes exist.
        hosts = list(net.hosts.values())
        for a in hosts:
            for b in hosts:
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        for i, host in enumerate(hosts):
            host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"w")
        net.run(1.0)
        return net, primary, router

    def test_headless_forwarding_survives_controller_death(self):
        net, primary, router = self.build()
        for channel in net.channels.values():
            channel.disconnect()
        net.run(0.5)
        assert primary.switch_count == 0
        # Installed rules keep forwarding without any controller.
        h1, h3 = net.host("h1"), net.host("h3")
        session = h1.ping(h3.ip, count=3, interval=0.1)
        net.run(3.0)
        assert session.received == 3

    def test_standby_takes_over(self):
        net, primary, _ = self.build()
        for channel in net.channels.values():
            channel.disconnect()
        net.run(0.5)
        # Switches "reconnect" to the standby: fresh channels + agents.
        standby, standby_router = make_controller(net)
        for name, dp in net.switches.items():
            channel = ControlChannel(net.sim, latency=0.001)
            SwitchAgent(dp, channel)
            standby.accept_channel(channel)
            channel.connect()
        net.run(3.0)  # handshake + LLDP rediscovery
        assert standby.switch_count == 4
        discovery = standby.get_app(TopologyDiscovery)
        assert discovery.link_count == 8  # 4 ring links x 2 directions
        # Takeover flush: the predecessor's rules would keep data
        # traffic in the dataplane forever, starving the standby of the
        # packet-ins it needs to learn hosts — so, like real controllers,
        # it wipes inherited forwarding state below its own LLDP rule
        # and rebuilds from scratch.
        from repro.dataplane import Match

        for handle in standby.switches.values():
            handle.delete_flows(match=Match())  # wipe inherited state
            # Re-establish the standby's own infrastructure rules.
            discovery.on_switch_enter(handle)
        net.run(0.5)
        # The standby learns hosts as they speak and manages new state.
        h1, h3 = net.host("h1"), net.host("h3")
        h1.send_udp(h3.ip, 7, 7, b"hello standby")
        h3.send_udp(h1.ip, 7, 7, b"hello back")
        net.run(1.0)
        tracker = standby.get_app(HostTracker)
        assert tracker.lookup_ip(h1.ip) is not None
        # And failure handling works under the new regime.
        net.fail_link("s1", "s2")
        net.run(1.5)
        session = h1.ping(h3.ip, count=3, interval=0.1)
        net.run(3.0)
        assert session.received == 3

    def test_no_stale_callbacks_from_dead_controller(self):
        net, primary, router = self.build()
        for channel in net.channels.values():
            channel.disconnect()
        net.run(0.5)
        standby, _ = make_controller(net)
        for name, dp in net.switches.items():
            channel = ControlChannel(net.sim, latency=0.001)
            SwitchAgent(dp, channel)
            standby.accept_channel(channel)
            channel.connect()
        # Old controller's events were published before disconnect; it
        # must not receive (or act on) anything afterwards.
        events_at_death = primary.events_published
        net.run(3.0)
        assert primary.events_published == events_at_death
        assert primary.switch_count == 0
