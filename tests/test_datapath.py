"""Datapath pipeline tests: miss handling, multi-table, groups, meters,
reserved ports, flood semantics, and port liveness."""

import pytest

from repro.dataplane import (
    Bucket,
    Datapath,
    DecTTL,
    FlowEntry,
    Group,
    GroupEntry,
    GroupType,
    Match,
    Meter,
    MeterEntry,
    Output,
    PacketInReason,
    PORT_ALL,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
    PORT_TABLE,
    SetIPDst,
    TableMissBehaviour,
)
from repro.errors import DataplaneError
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator


def udp_packet(dst_ip="10.0.0.2", ttl=64, sport=1):
    return (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
            / IPv4(src="10.0.0.1", dst=dst_ip, ttl=ttl)
            / UDP(src_port=sport, dst_port=9) / b"data")


@pytest.fixture
def dp():
    sim = Simulator()
    datapath = Datapath(dpid=1, sim=sim, num_tables=3)
    for n in (1, 2, 3):
        datapath.add_port(n)
    datapath.sent = []
    datapath.transmit = lambda port, pkt: datapath.sent.append((port, pkt))
    datapath.punted = []
    datapath.on_packet_in = (
        lambda pkt, in_port, reason:
        datapath.punted.append((in_port, reason, pkt))
    )
    return datapath


class TestPortManagement:
    def test_duplicate_port_rejected(self, dp):
        with pytest.raises(DataplaneError):
            dp.add_port(1)

    def test_reserved_port_number_rejected(self, dp):
        with pytest.raises(DataplaneError):
            dp.add_port(PORT_FLOOD)
        with pytest.raises(DataplaneError):
            dp.add_port(0)

    def test_port_status_callback(self, dp):
        events = []
        dp.on_port_status = lambda port, reason: events.append(
            (port.number, reason))
        dp.set_port_state(1, False)
        dp.set_port_state(1, False)  # no-op: already down
        dp.set_port_state(1, True)
        assert events == [(1, "down"), (1, "up")]

    def test_rx_on_down_port_dropped(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(2)]))
        dp.set_port_state(1, False)
        dp.inject(udp_packet(), 1)
        assert dp.sent == []
        assert dp.packets_dropped == 1


class TestMissBehaviour:
    def test_miss_punts_by_default(self, dp):
        dp.inject(udp_packet(), 1)
        assert len(dp.punted) == 1
        assert dp.punted[0][1] == PacketInReason.NO_MATCH

    def test_miss_drop_mode(self):
        sim = Simulator()
        datapath = Datapath(1, sim, miss_behaviour=TableMissBehaviour.DROP)
        datapath.add_port(1)
        datapath.inject(udp_packet(), 1)
        assert datapath.packets_dropped == 1
        assert datapath.packets_to_controller == 0

    def test_miss_continue_mode_falls_through_tables(self):
        sim = Simulator()
        datapath = Datapath(
            1, sim, num_tables=2,
            miss_behaviour=TableMissBehaviour.CONTINUE,
        )
        datapath.add_port(1)
        datapath.add_port(2)
        sent = []
        datapath.transmit = lambda port, pkt: sent.append(port)
        datapath.install_flow(FlowEntry(Match(), [Output(2)]), table_id=1)
        datapath.inject(udp_packet(), 1)
        assert sent == [2]

    def test_miss_continue_last_table_drops(self):
        sim = Simulator()
        datapath = Datapath(
            1, sim, num_tables=1,
            miss_behaviour=TableMissBehaviour.CONTINUE,
        )
        datapath.add_port(1)
        datapath.inject(udp_packet(), 1)
        assert datapath.packets_dropped == 1


class TestPipeline:
    def test_goto_table_chains_with_rewrites(self, dp):
        dp.install_flow(FlowEntry(Match(eth_type=0x0800),
                                  [SetIPDst("99.0.0.9")],
                                  priority=1, goto_table=1))
        dp.install_flow(FlowEntry(Match(ip_dst="99.0.0.9"), [Output(2)],
                                  priority=1), table_id=1)
        dp.inject(udp_packet(), 1)
        assert len(dp.sent) == 1
        port, pkt = dp.sent[0]
        assert port == 2
        assert pkt[IPv4].dst == "99.0.0.9"

    def test_goto_backward_rejected(self, dp):
        dp.install_flow(FlowEntry(Match(), [], goto_table=1), table_id=0)
        dp.install_flow(FlowEntry(Match(), [], goto_table=1), table_id=1)
        with pytest.raises(DataplaneError):
            dp.inject(udp_packet(), 1)

    def test_empty_actions_drop(self, dp):
        dp.install_flow(FlowEntry(Match(), []))
        dp.inject(udp_packet(), 1)
        assert dp.packets_dropped == 1
        assert dp.sent == []

    def test_goto_with_empty_actions_is_not_a_drop(self, dp):
        dp.install_flow(FlowEntry(Match(), [], goto_table=1))
        dp.install_flow(FlowEntry(Match(), [Output(2)]), table_id=1)
        dp.inject(udp_packet(), 1)
        assert dp.packets_dropped == 0
        assert [p for p, _ in dp.sent] == [2]

    def test_counters_touched_per_table(self, dp):
        dp.install_flow(FlowEntry(Match(), [], goto_table=1))
        dp.install_flow(FlowEntry(Match(), [Output(2)]), table_id=1)
        dp.inject(udp_packet(), 1)
        assert dp.tables[0].entries()[0].packet_count == 1
        assert dp.tables[1].entries()[0].packet_count == 1

    def test_ttl_expiry_punts(self, dp):
        dp.install_flow(FlowEntry(Match(), [DecTTL(), Output(2)]))
        dp.inject(udp_packet(ttl=1), 1)
        assert dp.sent == []
        assert dp.punted[0][1] == PacketInReason.TTL


class TestReservedPorts:
    def test_flood_excludes_ingress_and_down_and_noflood(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(PORT_FLOOD)]))
        dp.set_port_state(3, False)
        dp.inject(udp_packet(), 1)
        assert sorted(p for p, _ in dp.sent) == [2]

        dp.sent.clear()
        dp.set_port_state(3, True)
        dp.ports[2].no_flood = True
        dp.inject(udp_packet(), 1)
        assert sorted(p for p, _ in dp.sent) == [3]

    def test_all_includes_ingress(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(PORT_ALL)]))
        dp.inject(udp_packet(), 1)
        assert sorted(p for p, _ in dp.sent) == [1, 2, 3]

    def test_in_port_hairpins(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(PORT_IN_PORT)]))
        dp.inject(udp_packet(), 1)
        assert [p for p, _ in dp.sent] == [1]

    def test_controller_output_punts(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(PORT_CONTROLLER)]))
        dp.inject(udp_packet(), 1)
        assert dp.punted[0][1] == PacketInReason.ACTION

    def test_packet_out_to_table_resubmits(self, dp):
        dp.install_flow(FlowEntry(Match(ip_dst="7.7.7.7"), [Output(3)],
                                  priority=5))
        dp.send_packet_out(udp_packet(),
                           [SetIPDst("7.7.7.7"), Output(PORT_TABLE)],
                           in_port=1)
        assert [p for p, _ in dp.sent] == [3]

    def test_tx_to_down_port_counts_drop(self, dp):
        dp.install_flow(FlowEntry(Match(), [Output(2)]))
        dp.set_port_state(2, False)
        dp.inject(udp_packet(), 1)
        assert dp.sent == []
        assert dp.ports[2].tx_drops == 1


class TestGroupsInPipeline:
    def test_all_group_replicates(self, dp):
        dp.groups.add(GroupEntry(1, GroupType.ALL, [
            Bucket([Output(2)]), Bucket([Output(3)]),
        ]))
        dp.install_flow(FlowEntry(Match(), [Group(1)]))
        dp.inject(udp_packet(), 1)
        assert sorted(p for p, _ in dp.sent) == [2, 3]

    def test_failover_group_tracks_liveness(self, dp):
        dp.groups.add(GroupEntry(1, GroupType.FAST_FAILOVER, [
            Bucket([Output(2)], watch_port=2),
            Bucket([Output(3)], watch_port=3),
        ]))
        dp.install_flow(FlowEntry(Match(), [Group(1)]))
        dp.inject(udp_packet(), 1)
        dp.set_port_state(2, False)
        dp.inject(udp_packet(), 1)
        assert [p for p, _ in dp.sent] == [2, 3]

    def test_dead_failover_group_drops(self, dp):
        dp.groups.add(GroupEntry(1, GroupType.FAST_FAILOVER, [
            Bucket([Output(2)], watch_port=2),
        ]))
        dp.install_flow(FlowEntry(Match(), [Group(1)]))
        dp.set_port_state(2, False)
        dp.inject(udp_packet(), 1)
        assert dp.packets_dropped == 1

    def test_group_recursion_bounded(self, dp):
        dp.groups.add(GroupEntry(1, GroupType.ALL, [Bucket([Group(2)])]))
        dp.groups.add(GroupEntry(2, GroupType.ALL, [Bucket([Group(1)])]))
        dp.install_flow(FlowEntry(Match(), [Group(1)]))
        with pytest.raises(DataplaneError):
            dp.inject(udp_packet(), 1)


class TestMetersInPipeline:
    def test_meter_drops_when_exceeded(self, dp):
        dp.meters.add(MeterEntry(1, rate_bps=8, burst_bytes=70))
        dp.install_flow(FlowEntry(Match(), [Meter(1), Output(2)]))
        dp.inject(udp_packet(), 1)   # ~57 B packet fits the 70 B bucket
        dp.inject(udp_packet(), 1)   # bucket empty at t=0
        assert len(dp.sent) == 1
        assert dp.packets_dropped == 1

    def test_meter_drop_stops_goto_chain(self, dp):
        dp.meters.add(MeterEntry(1, rate_bps=8, burst_bytes=10))
        dp.install_flow(FlowEntry(Match(), [Meter(1)], goto_table=1))
        dp.install_flow(FlowEntry(Match(), [Output(2)]), table_id=1)
        dp.inject(udp_packet(), 1)  # bigger than the bucket: dropped
        assert dp.sent == []


class TestExpiryIntegration:
    def test_flow_expires_and_notifies(self):
        sim = Simulator()
        dp = Datapath(1, sim)
        dp.add_port(1)
        removed = []
        dp.on_flow_removed = lambda tid, e, r: removed.append((tid, r))
        dp.install_flow(FlowEntry(Match(), [Output(1)], idle_timeout=2.0))
        sim.run(until=5.0)
        assert removed == [(0, "idle_timeout")]
        assert dp.flow_count() == 0

    def test_sweeper_stops_when_no_timeouts_remain(self):
        sim = Simulator()
        dp = Datapath(1, sim)
        dp.add_port(1)
        dp.install_flow(FlowEntry(Match(), [Output(1)], hard_timeout=1.0))
        sim.run_until_idle()
        assert sim.pending_events == 0

    def test_shutdown_silences_datapath(self):
        sim = Simulator()
        dp = Datapath(1, sim)
        dp.add_port(1)
        dp.install_flow(FlowEntry(Match(), [Output(1)], hard_timeout=1.0))
        dp.shutdown()
        sim.run_until_idle()
        assert sim.pending_events == 0
