"""Topology discovery tests over live emulated networks."""


from repro.controller import (
    Controller,
    LinkDiscovered,
    LinkVanished,
    TopologyDiscovery,
)
from repro.netem import Network, Topology


def build(topo, probe_interval=0.5):
    net = Network(topo)
    controller = Controller(net.sim)
    discovery = controller.add_app(
        TopologyDiscovery(probe_interval=probe_interval,
                          link_timeout=3 * probe_interval)
    )
    for name in net.switches:
        channel = net.make_channel(name)
        controller.accept_channel(channel)
        channel.connect()
    return net, controller, discovery


class TestDiscovery:
    def test_linear_links_found_both_directions(self):
        net, controller, discovery = build(Topology.linear(3))
        net.run(2.0)
        assert discovery.link_count == 4  # 2 physical links × 2 dirs
        graph = discovery.graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_fat_tree_discovery(self):
        net, controller, discovery = build(Topology.fat_tree(4))
        net.run(3.0)
        graph = discovery.graph()
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 32  # fabric links only

    def test_discovery_events_published(self):
        events = []
        net, controller, discovery = build(Topology.linear(2))
        controller.subscribe(LinkDiscovered, events.append)
        net.run(2.0)
        assert len(events) == 2
        dpids = {(e.src_dpid, e.dst_dpid) for e in events}
        assert dpids == {(1, 2), (2, 1)}

    def test_port_toward(self):
        net, controller, discovery = build(Topology.linear(3))
        net.run(2.0)
        s1, s2 = net.switch("s1").dpid, net.switch("s2").dpid
        assert discovery.port_toward(s1, s2) == net.port_of("s1", "s2")
        assert discovery.port_toward(s1, 99) is None

    def test_edge_port_classification(self):
        net, controller, discovery = build(Topology.linear(2,
                                                           hosts_per_switch=1))
        net.run(2.0)
        s1 = net.switch("s1").dpid
        host_port = net.port_of("s1", "h1")
        trunk_port = net.port_of("s1", "s2")
        assert discovery.is_edge_port(s1, host_port)
        assert not discovery.is_edge_port(s1, trunk_port)


class TestFailureReaction:
    def test_port_down_removes_links_immediately(self):
        net, controller, discovery = build(Topology.linear(3))
        net.run(2.0)
        vanished = []
        controller.subscribe(LinkVanished, vanished.append)
        t_fail = net.sim.now
        net.fail_link("s1", "s2")
        net.run(0.1)
        assert len(vanished) == 2  # both directions
        assert discovery.link_count == 2
        # Reaction must be port-status-driven, not timeout-driven.
        assert net.sim.now - t_fail < 0.2

    def test_silent_loss_ages_out(self):
        net, controller, discovery = build(Topology.linear(2),
                                           probe_interval=0.5)
        net.run(2.0)
        assert discovery.link_count == 2
        # Cut the wire without port-down events: ages out after timeout.
        net.link("s1", "s2").fail()
        net.run(3.0)
        assert discovery.link_count == 0

    def test_recovery_rediscovers(self):
        net, controller, discovery = build(Topology.linear(2))
        net.run(2.0)
        net.fail_link("s1", "s2")
        net.run(0.5)
        net.recover_link("s1", "s2")
        net.run(2.0)
        assert discovery.link_count == 2

    def test_switch_leave_removes_its_links(self):
        net, controller, discovery = build(Topology.linear(3))
        net.run(2.0)
        net.channel("s2").disconnect()
        net.run(0.1)
        s2 = 2
        assert all(s2 not in (link.src_dpid, link.dst_dpid)
                   for link in discovery.links.values())

    def test_stop_halts_probing(self):
        net, controller, discovery = build(Topology.linear(2))
        net.run(2.0)
        discovery.stop()
        before = net.channels["s1"].switch_end.received.messages
        net.run(2.0)
        after = net.channels["s1"].switch_end.received.messages
        assert after == before  # no more LLDP packet-outs
