"""Edge-path sweep: error replies, odd commands, small API corners."""

import pytest

from repro.controller import Controller, ErrorEvent
from repro.dataplane import (
    Bucket,
    Datapath,
    FlowKey,
    GroupType,
    Match,
    Output,
)
from repro.errors import SimulationError
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator
from repro.southbound import (
    ControlChannel,
    Error,
    FeaturesReply,
    FlowMod,
    GroupMod,
    Hello,
    MeterMod,
    PacketOut,
    RoleRequest,
    SwitchAgent,
)


def stack():
    sim = Simulator()
    dp = Datapath(1, sim)
    dp.add_port(1)
    channel = ControlChannel(sim, latency=0.0005)
    SwitchAgent(dp, channel)
    inbox = []
    channel.controller_end.handler = inbox.append
    channel.controller_end.on_connect = (
        lambda: channel.controller_end.send(Hello()))
    channel.connect()
    sim.run_until_idle()
    return sim, dp, channel, inbox


def errors_in(inbox):
    return [m for m in inbox if isinstance(m, Error)]


class TestAgentErrorPaths:
    def test_unknown_flowmod_command(self):
        sim, dp, channel, inbox = stack()
        channel.controller_end.send(FlowMod(command=99))
        sim.run_until_idle()
        errs = errors_in(inbox)
        assert errs and errs[0].code == Error.BAD_REQUEST

    def test_unknown_metermod_command(self):
        sim, dp, channel, inbox = stack()
        channel.controller_end.send(MeterMod(command=99, meter_id=1,
                                             rate_bps=1e6))
        sim.run_until_idle()
        assert errors_in(inbox)[0].code == Error.BAD_METER

    def test_unknown_groupmod_command(self):
        sim, dp, channel, inbox = stack()
        channel.controller_end.send(GroupMod(
            command=99, group_id=1, group_type=GroupType.ALL,
            buckets=[Bucket([Output(1)])]))
        sim.run_until_idle()
        assert errors_in(inbox)[0].code == Error.BAD_GROUP

    def test_switch_rejects_controller_only_messages(self):
        sim, dp, channel, inbox = stack()
        # A switch should never receive a FeaturesReply.
        channel.controller_end.send(FeaturesReply(dpid=1))
        sim.run_until_idle()
        assert errors_in(inbox)[0].code == Error.BAD_REQUEST

    def test_duplicate_group_add_reports_error(self):
        sim, dp, channel, inbox = stack()
        for _ in range(2):
            channel.controller_end.send(GroupMod(
                group_id=5, group_type=GroupType.ALL,
                buckets=[Bucket([Output(1)])]))
        sim.run_until_idle()
        assert errors_in(inbox)[0].code == Error.BAD_GROUP

    def test_packet_out_with_bad_group_reports_error(self):
        sim, dp, channel, inbox = stack()
        from repro.dataplane import Group

        frame = (Ethernet(dst="00:00:00:00:00:02",
                          src="00:00:00:00:00:01") / b"x").encode()
        channel.controller_end.send(PacketOut(
            in_port=0, actions=[Group(404)], data=frame))
        sim.run_until_idle()
        assert errors_in(inbox)[0].code == Error.BAD_ACTION

    def test_equal_role_always_accepted(self):
        sim, dp, channel, inbox = stack()
        from repro.southbound import ControllerRole, RoleReply

        replies = []
        channel.controller_end.request(
            RoleRequest(ControllerRole.PRIMARY, 10), replies.append)
        channel.controller_end.request(
            RoleRequest(ControllerRole.EQUAL, 0), replies.append)
        sim.run_until_idle()
        assert isinstance(replies[1], RoleReply)
        assert replies[1].role == ControllerRole.EQUAL


class TestControllerErrorEvents:
    def test_switch_error_published_as_event(self):
        sim = Simulator()
        controller = Controller(sim)
        dp = Datapath(1, sim, table_capacity=1)
        dp.add_port(1)
        channel = ControlChannel(sim)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        sim.run_until_idle()
        events = []
        controller.subscribe(ErrorEvent, events.append)
        handle = controller.switch(1)
        handle.add_flow(Match(l4_dst=1), [Output(1)])
        handle.add_flow(Match(l4_dst=2), [Output(1)])  # table full
        sim.run_until_idle()
        assert events and events[0].code == Error.TABLE_FULL
        assert "full" in events[0].detail

    def test_group_and_meter_handle_helpers(self):
        sim = Simulator()
        controller = Controller(sim)
        dp = Datapath(1, sim)
        dp.add_port(1)
        channel = ControlChannel(sim)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        sim.run_until_idle()
        handle = controller.switch(1)
        handle.add_group(3, GroupType.ALL, [Bucket([Output(1)])])
        handle.modify_group(3, GroupType.ALL,
                            [Bucket([Output(1)], weight=2)])
        handle.add_meter(4, 1e6)
        sim.run_until_idle()
        assert dp.groups.get(3).buckets[0].weight == 2
        assert 4 in dp.meters
        handle.delete_group(3)
        handle.delete_meter(4)
        sim.run_until_idle()
        assert 3 not in dp.groups
        assert 4 not in dp.meters


class TestSimCorners:
    def test_drain_cancels_batch(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(1.0, fired.append, i) for i in range(5)]
        sim.drain(events)
        sim.run_until_idle()
        assert fired == []

    def test_signal_waiter_count(self):
        sim = Simulator()
        signal = sim.signal()

        def waiter():
            yield signal.wait()

        sim.spawn(waiter())
        sim.run(max_events=1)
        assert signal.waiter_count == 1
        signal.fire()
        sim.run_until_idle()
        assert signal.waiter_count == 0

    def test_negative_sleep_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.sleep(-1.0)


class TestSmallApiCorners:
    def test_match_container_protocol(self):
        m = Match(l4_dst=80, eth_type=0x0800)
        assert "l4_dst" in m
        assert m.get("l4_dst") == 80
        assert m.get("ip_src") is None
        assert sorted(m) == ["eth_type", "l4_dst"]

    def test_flowkey_hash_and_equality(self):
        pkt = (Ethernet(dst="00:00:00:00:00:02",
                        src="00:00:00:00:00:01")
               / IPv4(src="1.1.1.1", dst="2.2.2.2")
               / UDP(src_port=1, dst_port=2) / b"")
        k1 = FlowKey.from_packet(pkt, in_port=1)
        k2 = FlowKey.from_packet(pkt.copy(), in_port=1)
        assert k1 == k2
        assert hash(k1) == hash(k2)
        assert len({k1, k2}) == 1

    def test_policy_reprs(self):
        from repro.core import drop, filter_, flood, fwd, ifte, mod

        policy = ifte({"l4_dst": 80},
                      filter_(in_port=1) >> mod(ip_dscp=46) >> fwd(2),
                      flood() | drop())
        text = repr(policy)
        for token in ("ifte", "filter", "mod", "fwd(2)", "flood()",
                      "drop()"):
            assert token in text

    def test_flow_generator_pair_picker(self):
        from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
        from repro.netem import FlowGenerator, Network, Topology

        net = Network(Topology.single(3, bandwidth_bps=1e9),
                      miss_behaviour="drop")
        net.switch("s1").install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0))
        hosts = list(net.hosts.values())
        for a in hosts:
            for b in hosts:
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        h1, h2 = hosts[0], hosts[1]
        gen = FlowGenerator(
            net.sim, hosts, arrival_rate=30.0,
            size_source=iter(lambda: 1000, None),
            duration=2.0,
            pair_picker=lambda: (h1, h2),
        )
        net.run(4.0)
        assert gen.flows_started
        assert all(f.src == h1.name and f.dst == h2.name
                   for f in gen.flows_started)
