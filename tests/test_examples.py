"""Every example must run to completion and say what it promised.

These are the repository's deliverable (b); a refactor that silently
breaks one should fail CI, not a reader.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name: str, timeout: int = 240) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name,expected", [
    ("quickstart.py", ["All-pairs ping delivery: 100%",
                       "Hosts tracked: 6"]),
    ("datacenter_te.py", ["greedy", "goodput_mbps"]),
    ("enterprise_policy.py", ["engineering -> servers ping: 3/3",
                              "guest -> engineering ping:   0/3",
                              "guest VIP requests answered: 20/20"]),
    ("failover_drill.py", ["SDN central recompute",
                           "link-state (carrier detect)"]),
    ("custom_app.py", ["pinhole opened",
                       "server saw 1 packets (expected 1)"]),
    ("multipath_fabric.py", ["shared SELECT groups",
                             "fast-failover, no controller involved"]),
])
def test_example_runs(name, expected):
    stdout = run_example(name)
    for needle in expected:
        assert needle in stdout, (
            f"{name} output missing {needle!r}:\n{stdout[-1500:]}"
        )
