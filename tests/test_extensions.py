"""Tests for the extension features: multipath routing, protected
pairs (fast failover), and link taps."""


from repro.apps import MultipathRouter, ProtectedPairs
from repro.core import ZenPlatform
from repro.netem import CBRStream, Tap, Topology
from repro.packet import ICMP, UDP


def diamond_platform(**kw):
    """Two hosts joined by two equal-cost 2-hop switch paths."""
    topo = Topology()
    for _ in range(4):
        topo.add_switch()
    topo.add_link("s1", "s2", bandwidth_bps=1e9)
    topo.add_link("s2", "s4", bandwidth_bps=1e9)
    topo.add_link("s1", "s3", bandwidth_bps=1e9)
    topo.add_link("s3", "s4", bandwidth_bps=1e9)
    topo.add_link(topo.add_host(), "s1", bandwidth_bps=1e9)
    topo.add_link(topo.add_host(), "s4", bandwidth_bps=1e9)
    platform = ZenPlatform(topo, profile="bare", **kw)
    return platform


def warm(platform):
    h1, h2 = platform.host("h1"), platform.host("h2")
    h1.add_static_arp(h2.ip, h2.mac)
    h2.add_static_arp(h1.ip, h1.mac)
    h1.send_udp(h2.ip, 7, 7, b"w")
    h2.send_udp(h1.ip, 7, 7, b"w")
    platform.run(1.0)
    return h1, h2


class TestMultipathRouter:
    def test_connectivity(self):
        platform = diamond_platform()
        platform.router = platform.add_app(MultipathRouter())
        platform.start()
        h1, h2 = warm(platform)
        session = h1.ping(h2.ip, count=3, interval=0.1)
        platform.run(3.0)
        assert session.received == 3

    def test_flows_spread_over_both_arms(self):
        platform = diamond_platform()
        router = platform.add_app(MultipathRouter())
        platform.router = router
        platform.start()
        h1, h2 = warm(platform)
        assert router.multipath_rules >= 2  # s1->h2 and s4->h1
        # Many distinct flows: both arms must carry traffic.
        taps = [Tap(platform.net.link("s1", "s2")),
                Tap(platform.net.link("s1", "s3"))]
        for sport in range(40):
            h1.send_udp(h2.ip, 20000 + sport, 9000, b"x")
        platform.run(2.0)
        carried = [
            tap.count(lambda r: UDP in r.packet
                      and r.packet[UDP].dst_port == 9000)
            for tap in taps
        ]
        assert all(c > 0 for c in carried), carried
        assert sum(carried) == 40

    def test_single_flow_is_sticky(self):
        platform = diamond_platform()
        platform.router = platform.add_app(MultipathRouter())
        platform.start()
        h1, h2 = warm(platform)
        taps = [Tap(platform.net.link("s1", "s2")),
                Tap(platform.net.link("s1", "s3"))]
        for _ in range(20):
            h1.send_udp(h2.ip, 5555, 9000, b"same flow")
        platform.run(2.0)
        counts = sorted(
            tap.count(lambda r: UDP in r.packet
                      and r.packet[UDP].dst_port == 9000)
            for tap in taps
        )
        assert counts == [0, 20]  # all on one arm

    def test_groups_shared_across_destinations(self):
        platform = diamond_platform()
        router = platform.add_app(MultipathRouter())
        platform.router = router
        platform.start()
        warm(platform)
        # Both host destinations resolve to the same next-hop port set
        # on the far switch, so groups are shared per switch.
        assert router.groups_created <= 2  # one per head switch

    def test_reroutes_after_failure(self):
        platform = diamond_platform()
        platform.router = platform.add_app(MultipathRouter())
        platform.start()
        h1, h2 = warm(platform)
        platform.fail_link("s1", "s2")
        platform.run(1.0)
        session = h1.ping(h2.ip, count=3, interval=0.1)
        platform.run(3.0)
        assert session.received == 3


class TestProtectedPairs:
    def build(self):
        platform = diamond_platform(control_latency=0.002)
        platform.router = None
        protector = platform.add_app(ProtectedPairs())
        platform.start()
        h1, h2 = warm_protected(platform)
        return platform, protector, h1, h2

    def test_pair_is_protected_on_diamond(self):
        platform, protector, h1, h2 = self.build()
        pair = protector.protect_ips(h1.ip, h2.ip)
        platform.run(0.5)
        assert pair.protected
        assert pair.primary is not None and pair.backup is not None
        # The two paths share no link.
        primary_edges = set(map(frozenset,
                                zip(pair.primary, pair.primary[1:])))
        backup_edges = set(map(frozenset,
                               zip(pair.backup, pair.backup[1:])))
        assert not primary_edges & backup_edges
        session = h1.ping(h2.ip, count=2, interval=0.1)
        platform.run(3.0)
        assert session.received == 2

    def test_failover_is_dataplane_fast(self):
        platform, protector, h1, h2 = self.build()
        pair = protector.protect_ips(h1.ip, h2.ip)
        platform.run(0.5)
        arrivals = []
        h2.bind_udp(9000, lambda pkt, host: arrivals.append(
            platform.sim.now))
        CBRStream(h1, h2.ip, rate_bps=800_000, packet_size=1000,
                  duration=4.0)
        # Cut the first link of the primary path.
        a = platform.net.switch_name(pair.primary[0])
        b = platform.net.switch_name(pair.primary[1])
        fail_at = platform.sim.now + 1.0
        platform.sim.schedule(1.0, platform.fail_link, a, b)
        platform.run(6.0)
        after = [t for t in arrivals if t >= fail_at]
        assert after, "no traffic after failure"
        gap = after[0] - fail_at
        # Local repair: within ~3 packet intervals, far below the
        # controller RTT.
        assert gap < 0.03

    def test_reprotection_after_failure(self):
        platform, protector, h1, h2 = self.build()
        pair = protector.protect_ips(h1.ip, h2.ip)
        platform.run(0.5)
        a = platform.net.switch_name(pair.primary[0])
        b = platform.net.switch_name(pair.primary[1])
        platform.fail_link(a, b)
        platform.run(1.0)
        assert pair.reprotections >= 1
        # On the diamond, losing one arm leaves a single path: pair is
        # connected but no longer protected.
        assert not pair.protected
        session = h1.ping(h2.ip, count=2, interval=0.1)
        platform.run(3.0)
        assert session.received == 2


def warm_protected(platform):
    h1, h2 = platform.host("h1"), platform.host("h2")
    h1.add_static_arp(h2.ip, h2.mac)
    h2.add_static_arp(h1.ip, h1.mac)
    h1.send_udp(h2.ip, 7, 7, b"w")
    h2.send_udp(h1.ip, 7, 7, b"w")
    platform.run(1.0)
    return h1, h2


class TestTap:
    def test_capture_records_direction_and_time(self):
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        tap = Tap(platform.net.link("s1", "s2"))
        h1, h2 = platform.host("h1"), platform.host("h2")
        session = h1.ping(h2.ip, count=1)
        platform.run(3.0)
        assert session.received == 1
        icmp = [r for r in tap if r.packet is not None
                and ICMP in r.packet]
        assert len(icmp) >= 2  # request + reply crossed the trunk
        directions = {(r.src_node, r.dst_node) for r in icmp}
        assert ("s1", "s2") in directions
        assert ("s2", "s1") in directions
        times = [r.time for r in tap.records]
        assert times == sorted(times)

    def test_filter_and_counters(self):
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        tap = Tap(platform.net.link("s1", "s2"),
                  predicate=lambda pkt: UDP in pkt)
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.add_static_arp(h2.ip, h2.mac)
        h1.send_udp(h2.ip, 1, 9, b"x")
        platform.run(2.0)
        assert all(UDP in r.packet for r in tap)
        assert tap.dropped_by_filter > 0  # LLDP was filtered out

    def test_max_records_cap(self):
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        tap = Tap(platform.net.link("s1", "s2"), max_records=3)
        platform.run(5.0)  # LLDP chatter alone exceeds the cap
        assert len(tap) == 3

    def test_detach_restores_link(self):
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        link = platform.net.link("s1", "s2")
        tap = Tap(link)
        tap.detach()
        count = len(tap)
        platform.run(3.0)
        assert len(tap) == count  # nothing recorded after detach
        # And traffic still flows.
        assert platform.ping_all(count=1, settle=3.0) == 1.0

    def test_metadata_only_mode(self):
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        tap = Tap(platform.net.link("s1", "s2"), keep_packets=False)
        platform.run(2.0)
        assert len(tap) > 0
        assert all(r.packet is None for r in tap)
        assert tap.summary_lines(limit=2)
