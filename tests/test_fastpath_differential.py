"""Differential tests: the datapath fast path is semantically invisible.

Every scenario here runs the *identical* seeded workload twice — once
with ``fast_path=False``, once with ``fast_path=True`` — and asserts
that every observable is bit-identical: emitted frames, punts,
FlowRemoved notifications, per-entry and per-table counters, switch
stats, host delivery counts, and the kernel's processed-event total.
The microflow cache may only change wall-clock time, never results.
"""

import pytest

from repro.core import ZenPlatform
from repro.dataplane.actions import (
    Group,
    Output,
    PORT_CONTROLLER,
    PORT_FLOOD,
    SetDSCP,
)
from repro.dataplane.flowtable import FlowEntry
from repro.dataplane.group import Bucket, GroupEntry, GroupType
from repro.dataplane.match import Match
from repro.dataplane.switch import Datapath
from repro.faults import FaultSchedule
from repro.netem import Topology
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator

PORTS = (1, 2, 3, 4)
MACS = ["02:00:00:00:00:%02x" % i for i in range(1, 5)]
IPS = ["10.0.0.%d" % i for i in range(1, 5)]


# ----------------------------------------------------------------------
# Scenario 1: randomized flow-mod / packet workload on a raw datapath
# ----------------------------------------------------------------------
def _random_match(rng) -> Match:
    """Random match: sometimes fully exact, sometimes wildcarded."""
    shape = rng.random()
    fields = {}
    if shape < 0.3:
        # Fully specified match (exercises the exact-match sub-index).
        fields = dict(
            in_port=rng.choice(PORTS),
            eth_src=rng.choice(MACS),
            eth_dst=rng.choice(MACS),
            eth_type=0x0800,
            vlan_vid=0,
            ip_src=rng.choice(IPS),
            ip_dst=rng.choice(IPS),
            ip_proto=17,
            ip_dscp=0,
            l4_src=rng.randrange(1, 5),
            l4_dst=rng.randrange(1, 5),
        )
    else:
        if rng.random() < 0.7:
            fields["eth_type"] = 0x0800
        if rng.random() < 0.5:
            fields["ip_dst"] = rng.choice(IPS)
        if rng.random() < 0.3:
            fields["in_port"] = rng.choice(PORTS)
        if rng.random() < 0.3:
            fields["l4_dst"] = rng.randrange(1, 5)
    return Match(**fields)


def _random_packet(rng):
    return (
        Ethernet(src=rng.choice(MACS), dst=rng.choice(MACS))
        / IPv4(src=rng.choice(IPS), dst=rng.choice(IPS), dscp=0)
        / UDP(src_port=rng.randrange(1, 5), dst_port=rng.randrange(1, 5))
        / b"payload"
    )


def _drive_datapath(fast_path: bool, seed: int) -> dict:
    sim = Simulator(seed=seed)
    dp = Datapath(1, sim, num_tables=3, fast_path=fast_path)
    for number in PORTS:
        dp.add_port(number)
    emitted, punts, removed = [], [], []
    dp.transmit = lambda port, pkt: emitted.append(
        (sim.now, port, bytes(pkt.encode()))
    )
    dp.on_packet_in = lambda pkt, in_port, reason: punts.append(
        (sim.now, in_port, reason, bytes(pkt.encode()))
    )
    dp.on_flow_removed = lambda tid, entry, reason: removed.append(
        (sim.now, tid, repr(entry.match), entry.priority,
         entry.packet_count, entry.byte_count, reason)
    )
    dp.groups.add(GroupEntry(7, GroupType.SELECT, [
        Bucket([Output(1)]), Bucket([Output(2)], weight=2),
    ]))
    rng = sim.fork_rng()

    def random_op():
        roll = rng.random()
        if roll < 0.45:
            table_id = rng.randrange(3)
            actions = rng.choice((
                [Output(rng.choice(PORTS))],
                [SetDSCP(10), Output(rng.choice(PORTS))],
                [Group(7)],
                [Output(PORT_FLOOD)],
                [Output(PORT_CONTROLLER)],
            ))
            goto = (table_id + 1 if table_id < 2 and rng.random() < 0.25
                    else None)
            dp.install_flow(FlowEntry(
                _random_match(rng), actions,
                priority=rng.randrange(1, 6),
                idle_timeout=rng.choice((0.0, 0.0, 0.4)),
                hard_timeout=rng.choice((0.0, 0.0, 0.9)),
                goto_table=goto,
            ), table_id=table_id)
        elif roll < 0.55:
            dp.remove_flows(
                table_id=rng.randrange(3),
                match=Match(eth_type=0x0800) if rng.random() < 0.5
                else None,
                priority=rng.randrange(1, 6)
                if rng.random() < 0.3 else None,
            )
        elif roll < 0.62:
            port = rng.choice(PORTS)
            dp.set_port_state(port, not dp.port(port).up)
        else:
            dp.inject(_random_packet(rng), rng.choice(PORTS))

    for i in range(600):
        sim.schedule(0.01 * i + rng.random() * 0.005, random_op)
    sim.run(until=8.0)  # past every timeout so expiry fires too
    return {
        "emitted": emitted,
        "punts": punts,
        "removed": removed,
        "stats": dp.stats(),
        "tables": [(t.table_id, t.lookup_count, t.matched_count, len(t))
                   for t in dp.tables],
        "entries": [
            sorted((repr(e.match), e.priority, e.packet_count,
                    e.byte_count) for e in t)
            for t in dp.tables
        ],
        "events": sim.events_processed,
    }


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_datapath_differential_random_workload(seed):
    off = _drive_datapath(fast_path=False, seed=seed)
    on = _drive_datapath(fast_path=True, seed=seed)
    assert on == off


# ----------------------------------------------------------------------
# Scenario 2: full platform, reactive profile (flow-mod heavy)
# ----------------------------------------------------------------------
def _platform_observables(platform) -> dict:
    return {
        "dp_stats": {name: dp.stats()
                     for name, dp in platform.net.switches.items()},
        "tables": {
            name: [(t.table_id, t.lookup_count, t.matched_count)
                   for t in dp.tables]
            for name, dp in platform.net.switches.items()
        },
        "flows": {
            name: sorted((t.table_id, repr(e.match), e.priority,
                          e.packet_count, e.byte_count)
                         for t in dp.tables for e in t)
            for name, dp in platform.net.switches.items()
        },
        "hosts": {name: (host.rx_packets, host.tx_packets)
                  for name, host in platform.net.hosts.items()},
        "events": platform.sim.events_processed,
    }


def _drive_platform(fast_path: bool, seed: int,
                    with_faults: bool) -> dict:
    platform = ZenPlatform(
        Topology.linear(4, hosts_per_switch=1),
        profile="reactive",
        seed=seed,
        fast_path=fast_path,
    ).start()
    if with_faults:
        # start() has already run ~2.5 s of warmup; faults go after.
        (FaultSchedule(platform.net)
         .link_flap(4.0, "s2", "s3", down_for=0.6, period=2.0, count=3)
         .channel_flap(5.0, "s1", down_for=0.5, period=3.0, count=2))
    hosts = list(platform.net.hosts.values())
    sim = platform.sim
    rng = sim.fork_rng()
    for i in range(150):
        src, dst = rng.sample(hosts, 2)
        sim.schedule(rng.uniform(0.0, 9.0), src.send_udp,
                     dst.ip, 5000 + i % 11, 6000 + i % 7, b"diff")
    platform.run(12.0)
    return _platform_observables(platform)


@pytest.mark.parametrize("seed", [3, 11])
def test_platform_differential_reactive(seed):
    off = _drive_platform(fast_path=False, seed=seed, with_faults=False)
    on = _drive_platform(fast_path=True, seed=seed, with_faults=False)
    assert on == off


# ----------------------------------------------------------------------
# Scenario 3: fault churn — invalidation under link/channel flaps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [5, 23])
def test_platform_differential_under_fault_churn(seed):
    off = _drive_platform(fast_path=False, seed=seed, with_faults=True)
    on = _drive_platform(fast_path=True, seed=seed, with_faults=True)
    assert on == off


# ----------------------------------------------------------------------
# Fast-path bookkeeping sanity (not differential, but cheap here)
# ----------------------------------------------------------------------
def test_fast_path_stats_shape():
    sim = Simulator(seed=0)
    dp = Datapath(1, sim, fast_path=True)
    dp.add_port(1)
    dp.add_port(2)
    dp.transmit = lambda port, pkt: None
    dp.install_flow(FlowEntry(Match(eth_type=0x0800), [Output(2)],
                              priority=1))
    pkt = (Ethernet(src=MACS[0], dst=MACS[1])
           / IPv4(src=IPS[0], dst=IPS[1])
           / UDP(src_port=1, dst_port=2) / b"x")
    for _ in range(5):
        dp.inject(pkt.copy(), 1)
    stats = dp.fast_path_stats()
    assert stats["enabled"] is True
    assert stats["misses"] == 1
    assert stats["hits"] == 4
    assert stats["cached_paths"] == 1
    generation = stats["generation"]
    dp.install_flow(FlowEntry(Match(), [], priority=0))
    assert dp.fast_path_stats()["generation"] == generation + 1

    disabled = Datapath(2, sim, fast_path=False)
    assert disabled.fast_path_stats()["enabled"] is False


# ----------------------------------------------------------------------
# Scenario 4: checker differential — the microflow cache must not change
# a single verdict, counterexample, or observable on fuzzed scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 5])
def test_check_verdicts_differential(seed):
    from repro.check import generate_scenario, run_scenario

    scenario = generate_scenario(seed)
    off = run_scenario(scenario, fast_path=False, monitor=True)
    on = run_scenario(scenario, fast_path=True, monitor=True)
    assert on.verdicts == off.verdicts
    assert on.monitor_failures == off.monitor_failures
    assert on.to_dict() == off.to_dict()
