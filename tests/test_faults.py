"""Fault injection, reconnect semantics, and controller resync.

Covers the churn-only bugs: cross-epoch delivery on the control channel,
stale serialisation backlog after reconnect, silently-dropped pending
requests, link in-flight delivery across a cut, receiver state growth —
and the recovery machinery: request retry with backoff, flow-table
resync after crash/restart, and deterministic fault scenarios.
"""

import pytest

from repro.core import ZenPlatform
from repro.dataplane import Datapath, Match, Output
from repro.errors import TopologyError
from repro.faults import FaultSchedule
from repro.netem import Network, Topology
from repro.netem.reliable import ReliableReceiver, ReliableSender
from repro.sim import Simulator
from repro.southbound import (
    ControlChannel,
    EchoReply,
    EchoRequest,
    Error,
    Hello,
    StatsKind,
    StatsRequest,
    SwitchAgent,
)


def make_stack(latency=0.001, bandwidth_bps=0.0):
    sim = Simulator()
    dp = Datapath(1, sim)
    dp.add_port(1)
    dp.add_port(2)
    channel = ControlChannel(sim, latency=latency,
                             bandwidth_bps=bandwidth_bps)
    agent = SwitchAgent(dp, channel)
    inbox = []
    channel.controller_end.handler = inbox.append
    channel.controller_end.on_connect = (
        lambda: channel.controller_end.send(Hello())
    )
    return sim, dp, channel, agent, inbox


def warm_platform(**kw):
    """A started 4-ring proactive platform with routes installed."""
    platform = ZenPlatform(
        Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
        profile="proactive", control_latency=0.002, **kw,
    )
    platform.start()
    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")
    platform.run(1.0)
    return platform


class TestConnectionEpochs:
    def test_in_flight_message_lost_across_quick_reconnect(self):
        """The regression the epoch stamp exists for: a message in
        flight at disconnect() must NOT be delivered after a reconnect
        that happens before its arrival time."""
        sim, dp, channel, agent, inbox = make_stack(latency=0.010)
        channel.connect()
        sim.run_until_idle()
        inbox.clear()
        channel.switch_end.send(EchoRequest(b"doomed"))
        # Flap faster than the 10 ms propagation: down at 1 ms, up at 2 ms.
        sim.schedule(0.001, channel.disconnect)
        sim.schedule(0.002, channel.connect)
        sim.run_until_idle()
        assert not any(isinstance(m, EchoRequest) for m in inbox)
        assert channel.messages_dropped >= 1
        assert channel.epoch == 2

    def test_busy_backlog_cleared_on_disconnect(self):
        """With bandwidth_bps set, a pre-disconnect send backlog must not
        delay the first message of the next connection."""
        sim, dp, channel, agent, inbox = make_stack(
            latency=0.001, bandwidth_bps=800_000.0)  # ~1.1 ms per message
        channel.connect()
        sim.run_until_idle()
        # Queue a ~55 ms serialisation backlog, then flap immediately.
        for _ in range(50):
            channel.switch_end.send(EchoRequest(b"x" * 100))
        channel.disconnect()
        assert channel._busy_until[channel.switch_end] == 0.0
        channel.connect()
        t0 = sim.now
        arrivals = []
        channel.controller_end.handler = lambda m: arrivals.append(
            (sim.now, m))
        channel.switch_end.send(EchoRequest(b"fresh"))
        sim.run_until_idle()
        fresh = [t for t, m in arrivals
                 if isinstance(m, EchoRequest) and m.data == b"fresh"]
        assert fresh, "post-reconnect message never arrived"
        # Hello + its own serialisation + latency — a few ms — not the
        # dead connection's ~55 ms backlog.
        assert fresh[0] - t0 < 0.010

    def test_connect_disconnect_counters(self):
        sim, dp, channel, agent, inbox = make_stack()
        channel.connect()
        channel.disconnect()
        channel.connect()
        assert channel.connects == 2
        assert channel.disconnects == 1
        assert channel.epoch == 2


class TestPendingRequestFailure:
    def test_pending_request_fails_on_disconnect(self):
        sim, dp, channel, agent, inbox = make_stack(latency=0.010)
        channel.connect()
        sim.run_until_idle()
        failures = []
        channel.controller_end.request(
            StatsRequest(StatsKind.PORT, 0xFF),
            callback=lambda msg: pytest.fail("callback must not fire"),
            on_failure=failures.append,
        )
        channel.disconnect()
        sim.run_until_idle()
        assert len(failures) == 1
        assert isinstance(failures[0], Error)
        assert failures[0].code == Error.CHANNEL_DOWN
        assert channel.controller_end.pending_requests == 0
        assert channel.controller_end.requests_failed == 1

    def test_failure_routed_to_callback_without_on_failure(self):
        sim, dp, channel, agent, inbox = make_stack(latency=0.010)
        channel.connect()
        sim.run_until_idle()
        got = []
        channel.controller_end.request(
            StatsRequest(StatsKind.PORT, 0xFF), callback=got.append)
        channel.disconnect()
        sim.run_until_idle()
        assert len(got) == 1
        assert isinstance(got[0], Error) and got[0].code == Error.CHANNEL_DOWN

    def test_request_timeout_fires_without_reply(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=0.001)
        channel.connect()  # nothing handles the switch end: no replies
        failures = []
        channel.controller_end.request(
            EchoRequest(b"ping"), callback=failures.append, timeout=0.1)
        sim.run_until_idle()
        assert len(failures) == 1
        assert failures[0].code == Error.TIMEOUT

    def test_retries_with_exponential_backoff(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=0.001)
        channel.connect()
        sent_times = []
        channel.switch_end.handler = lambda m: sent_times.append(sim.now)
        failures = []
        channel.controller_end.request(
            EchoRequest(b"ping"), callback=failures.append,
            timeout=0.1, retries=2, backoff=2.0)
        sim.run_until_idle()
        # Original + 2 retries, then failure.
        assert len(sent_times) == 3
        assert len(failures) == 1 and failures[0].code == Error.TIMEOUT
        assert channel.controller_end.request_retries == 2
        # Gaps double: ~0.1 then ~0.2.
        gap1 = sent_times[1] - sent_times[0]
        gap2 = sent_times[2] - sent_times[1]
        assert gap2 == pytest.approx(2 * gap1, rel=0.05)

    def test_retry_succeeds_when_reply_finally_arrives(self):
        sim, dp, channel, agent, inbox = make_stack(latency=0.001)
        channel.connect()
        sim.run_until_idle()
        # Suppress the agent's first reply by hijacking the handler once.
        real_handler = channel.switch_end.handler
        dropped = []

        def flaky(msg):
            if isinstance(msg, EchoRequest) and not dropped:
                dropped.append(msg)
                return  # swallow: no reply, forcing a retry
            real_handler(msg)

        channel.switch_end.handler = flaky
        replies = []
        channel.controller_end.request(
            EchoRequest(b"please"), callback=replies.append,
            timeout=0.05, retries=3)
        sim.run_until_idle()
        assert len(replies) == 1
        assert isinstance(replies[0], EchoReply)
        assert channel.controller_end.requests_failed == 0


class TestLinkCut:
    def test_in_flight_packet_dies_with_the_link(self):
        """A packet on the wire when the link is cut must not arrive,
        even if the link recovers before its arrival time."""
        net = Network(Topology.single(2, bandwidth_bps=1e9),
                      miss_behaviour="flood")
        h1, h2 = net.host("h1"), net.host("h2")
        h1.add_static_arp(h2.ip, h2.mac)
        got = []
        h2.bind_udp(9999, lambda pkt, host: got.append(pkt))
        link = net.link("h1", "s1")
        h1.send_udp(h2.ip, 9999, 9999, b"doomed")
        # The packet is serialising/propagating; cut then heal quickly.
        net.sim.schedule(0.00002, link.fail)
        net.sim.schedule(0.00004, link.recover)
        net.run(1.0)
        assert got == []
        stats = link.direction_stats()
        assert stats[0]["dropped_cut"] + stats[1]["dropped_cut"] >= 1


def reliable_net():
    from repro.dataplane import FlowEntry, PORT_FLOOD
    net = Network(Topology.single(2, bandwidth_bps=10e6),
                  miss_behaviour="drop")
    net.switch("s1").install_flow(
        FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0))
    h1, h2 = net.host("h1"), net.host("h2")
    h1.add_static_arp(h2.ip, h2.mac)
    h2.add_static_arp(h1.ip, h1.mac)
    return net, h1, h2


class TestReceiverPrune:
    def test_completed_transfers_pruned_after_grace(self):
        net, h1, h2 = reliable_net()
        done = {}
        receiver = ReliableReceiver(
            h2, 7000, on_complete=lambda x, d: done.update({x: d}),
            reack_grace=0.5)
        senders = [ReliableSender(h1, h2.ip, 7000, b"d" * 3000, mss=500)
                   for _ in range(5)]
        net.run(10.0)
        assert all(s.complete for s in senders)
        assert len(done) == 5
        # All transfer state pruned after the grace window.
        assert receiver.tracked_transfers == 0
        assert receiver.completed == {}
        assert receiver.transfers_pruned == 5

    def test_straggler_after_prune_creates_no_state(self):
        net, h1, h2 = reliable_net()
        receiver = ReliableReceiver(h2, 7000, reack_grace=0.1)
        sender = ReliableSender(h1, h2.ip, 7000, b"z" * 2000, mss=500)
        net.run(5.0)
        assert sender.complete and receiver.tracked_transfers == 0
        # A duplicate mid-transfer segment arrives long after the prune.
        import struct
        stray = struct.pack("!III", sender.transfer_id, 2, 4) + b"z" * 500
        h1.send_udp(h2.ip, 50001, 7000, stray)
        net.run(1.0)
        assert receiver.tracked_transfers == 0
        assert receiver.segments_discarded >= 1


class TestControllerResync:
    def test_channel_flap_marks_stale_and_resyncs(self):
        platform = warm_platform()
        ctl = platform.controller
        net = platform.net
        t0 = net.sim.now
        FaultSchedule(net).channel_flap(t0 + 0.5, "s1",
                                        down_for=0.5, period=2.0)
        platform.run(0.7)  # channel is down now
        assert ctl.switch_count == 3
        assert net.switch("s1").dpid in ctl._stale
        platform.run(2.0)  # reconnect + resync done
        assert ctl.switch_count == 4
        assert not ctl._stale
        assert ctl.resyncs == 1
        assert platform.ping_all(count=1, settle=5.0) == 1.0

    def test_crash_restart_restores_flow_entries(self):
        """The headline resync property: a rebooted (state-wiped) switch
        gets its intended flow entries reinstalled from the ledger."""
        platform = warm_platform()
        ctl = platform.controller
        net = platform.net
        dp = net.switch("s2")
        flows_before = dp.flow_count()
        assert flows_before > 0
        t0 = net.sim.now
        FaultSchedule(net).switch_crash(t0 + 0.5, "s2", restart_after=0.5)
        platform.run(0.7)
        assert dp.flow_count() == 0  # reboot wiped the tables
        platform.run(3.0)
        assert ctl.resyncs == 1
        assert ctl.resync_reinstalled > 0
        assert dp.flow_count() == flows_before
        assert platform.ping_all(count=1, settle=5.0) == 1.0

    def test_resync_deletes_unintended_entries(self):
        """Entries on the switch the controller never asked for (a
        predecessor's leftovers) are removed by the reconciliation."""
        platform = warm_platform()
        ctl = platform.controller
        net = platform.net
        dp = net.switch("s3")
        from repro.dataplane import FlowEntry
        rogue = FlowEntry(Match(ip_dst="203.0.113.9"),
                          [Output(1)], priority=7)
        t0 = net.sim.now
        sched = FaultSchedule(net)
        sched.channel_down(t0 + 0.2, "s3")
        # Rogue state appears while the controller is blind.
        net.sim.schedule_at(t0 + 0.4, dp.install_flow, rogue)
        sched.channel_up(t0 + 0.8, "s3")
        platform.run(3.0)
        assert ctl.resync_deleted >= 1
        table = dp.table(0)
        assert not any(e.match == rogue.match and e.priority == 7
                       for e in table)

    def test_handshake_survives_flap_mid_features(self):
        """A flap between Hello and FeaturesReply: the request fails
        explicitly, and the next reconnect completes the handshake."""
        platform = warm_platform()
        ctl = platform.controller
        net = platform.net
        t0 = net.sim.now
        sched = FaultSchedule(net)
        sched.channel_down(t0 + 0.2, "s4")
        # Reconnect, then cut again 1 ms in — mid-handshake (the
        # features round trip needs 2 x 2 ms) — then heal for good.
        sched.channel_up(t0 + 0.5, "s4")
        sched.channel_down(t0 + 0.501, "s4")
        sched.channel_up(t0 + 0.8, "s4")
        platform.run(3.0)
        assert ctl.switch_count == 4
        assert platform.ping_all(count=1, settle=5.0) == 1.0


class TestFaultSchedule:
    def test_validation(self):
        net = Network(Topology.ring(4, hosts_per_switch=1))
        sched = FaultSchedule(net)
        with pytest.raises(TopologyError):
            sched.link_flap(0.0, "s1", "s2", down_for=0.0, period=1.0)
        with pytest.raises(TopologyError):
            sched.link_flap(0.0, "s1", "s2", down_for=1.0, period=0.5)
        with pytest.raises(TopologyError):
            sched.link_down(0.0, "s1", "nope")
        net.run(1.0)
        with pytest.raises(TopologyError):
            sched.link_down(0.5, "s1", "s2")  # in the past

    def test_log_records_injections_in_order(self):
        net = Network(Topology.ring(4, hosts_per_switch=1))
        sched = FaultSchedule(net)
        sched.link_flap(1.0, "s1", "s2", down_for=0.25, period=1.0, count=2)
        net.run(3.0)
        kinds = [(e.kind, e.time) for e in sched.log]
        assert kinds == [("link_down", 1.0), ("link_up", 1.25),
                         ("link_down", 2.0), ("link_up", 2.25)]
        assert sched.events("link_down")[0].target == "s1-s2"
        assert sched.injected == 4

    def test_scenario_is_deterministic(self):
        """Same seed, same schedule => bit-identical fault outcome."""
        def run_once(seed):
            platform = ZenPlatform(
                Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
                profile="proactive", control_latency=0.002, seed=seed,
            )
            platform.start()
            net = platform.net
            t0 = net.sim.now
            sched = FaultSchedule(net)
            sched.channel_flap(t0 + 0.5, "s1", down_for=0.4, period=1.0,
                               count=2)
            sched.link_flap(t0 + 0.7, "s2", "s3", down_for=0.3, period=1.0)
            platform.run(4.0)
            ctl = platform.controller
            return (net.sim.events_processed, ctl.resyncs,
                    ctl.events_published,
                    [(e.kind, e.time, e.target) for e in sched.log])

        assert run_once(7) == run_once(7)
        # A different seed still executes the same schedule.
        assert run_once(7)[3] == run_once(11)[3]
