"""Flow table semantics: priority, replacement, deletion, timeouts,
capacity, and eviction."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane import (
    VLAN_ABSENT,
    FlowEntry,
    FlowKey,
    FlowTable,
    Match,
    Output,
    RemovalReason,
)
from repro.errors import TableFullError
from repro.packet import Ethernet, IPv4, UDP


def key(dst_port=80):
    pkt = (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
           / IPv4(src="10.0.0.1", dst="10.0.0.2")
           / UDP(src_port=1, dst_port=dst_port) / b"")
    return FlowKey.from_packet(pkt, in_port=1)


def entry(priority=0, match=None, port=1, **kw):
    return FlowEntry(match if match is not None else Match(),
                     [Output(port)], priority=priority, **kw)


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        table.insert(entry(priority=1, port=1))
        table.insert(entry(priority=10, port=2))
        table.insert(entry(priority=5, port=3))
        hit = table.lookup(key())
        assert hit.priority == 10

    def test_most_recent_wins_at_equal_priority(self):
        table = FlowTable()
        table.insert(entry(priority=5, match=Match(l4_dst=80), port=1))
        table.insert(entry(priority=5, match=Match(in_port=1), port=2))
        hit = table.lookup(key())
        assert hit.actions == [Output(2)]

    def test_miss_returns_none(self):
        table = FlowTable()
        table.insert(entry(match=Match(l4_dst=443)))
        assert table.lookup(key(dst_port=80)) is None

    def test_lookup_counters(self):
        table = FlowTable()
        table.insert(entry(match=Match(l4_dst=80)))
        table.lookup(key(80))
        table.lookup(key(81))
        assert table.lookup_count == 2
        assert table.matched_count == 1


class TestInsertReplace:
    def test_same_match_priority_replaces(self):
        table = FlowTable()
        table.insert(entry(priority=5, match=Match(l4_dst=80), port=1))
        table.insert(entry(priority=5, match=Match(l4_dst=80), port=9))
        assert len(table) == 1
        assert table.lookup(key()).actions == [Output(9)]

    def test_different_priority_coexists(self):
        table = FlowTable()
        table.insert(entry(priority=5, match=Match(l4_dst=80)))
        table.insert(entry(priority=6, match=Match(l4_dst=80)))
        assert len(table) == 2

    def test_replacement_resets_counters(self):
        table = FlowTable()
        table.insert(entry(priority=5, match=Match(l4_dst=80)))
        table.lookup(key()).touch(1.0, 100)
        table.insert(entry(priority=5, match=Match(l4_dst=80)), now=2.0)
        assert table.lookup(key()).packet_count == 0


class TestDelete:
    def test_delete_all(self):
        table = FlowTable()
        for p in range(5):
            table.insert(entry(priority=p, match=Match(l4_dst=p)))
        removed = table.delete()
        assert len(removed) == 5
        assert len(table) == 0

    def test_nonstrict_delete_removes_subsets(self):
        table = FlowTable()
        table.insert(entry(match=Match(l4_dst=80, in_port=1)))
        table.insert(entry(match=Match(l4_dst=80)))
        table.insert(entry(match=Match(l4_dst=443)))
        removed = table.delete(match=Match(l4_dst=80))
        assert len(removed) == 2
        assert len(table) == 1

    def test_strict_delete_requires_exact_pair(self):
        table = FlowTable()
        table.insert(entry(priority=5, match=Match(l4_dst=80)))
        table.insert(entry(priority=6, match=Match(l4_dst=80)))
        removed = table.delete(match=Match(l4_dst=80), priority=5,
                               strict=True)
        assert len(removed) == 1
        assert table.entries()[0].priority == 6

    def test_delete_by_cookie(self):
        table = FlowTable()
        table.insert(entry(match=Match(l4_dst=80), cookie=7))
        table.insert(entry(match=Match(l4_dst=81), cookie=8))
        removed = table.delete(cookie=7)
        assert len(removed) == 1
        assert table.entries()[0].cookie == 8


class TestTimeouts:
    def test_hard_timeout(self):
        table = FlowTable()
        table.insert(entry(hard_timeout=5.0), now=0.0)
        assert table.expire(4.9) == []
        expired = table.expire(5.0)
        assert len(expired) == 1
        assert expired[0][1] == RemovalReason.HARD_TIMEOUT

    def test_idle_timeout_refreshed_by_hits(self):
        table = FlowTable()
        table.insert(entry(idle_timeout=2.0), now=0.0)
        e = table.entries()[0]
        e.touch(1.5, 10)
        assert table.expire(3.0) == []  # used at 1.5; idle until 3.5
        expired = table.expire(3.6)
        assert expired and expired[0][1] == RemovalReason.IDLE_TIMEOUT

    def test_hard_beats_idle_when_both_due(self):
        table = FlowTable()
        table.insert(entry(idle_timeout=1.0, hard_timeout=1.0), now=0.0)
        expired = table.expire(1.0)
        assert expired[0][1] == RemovalReason.HARD_TIMEOUT

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.insert(entry(), now=0.0)
        assert table.expire(1e9) == []


class TestCapacity:
    def test_insert_into_full_table_raises(self):
        table = FlowTable(capacity=2)
        table.insert(entry(match=Match(l4_dst=1)))
        table.insert(entry(match=Match(l4_dst=2)))
        with pytest.raises(TableFullError):
            table.insert(entry(match=Match(l4_dst=3)))

    def test_replacement_does_not_need_capacity(self):
        table = FlowTable(capacity=1)
        table.insert(entry(priority=5, match=Match(l4_dst=1), port=1))
        table.insert(entry(priority=5, match=Match(l4_dst=1), port=2))
        assert len(table) == 1

    def test_lru_eviction(self):
        table = FlowTable(capacity=2, eviction_policy="lru")
        table.insert(entry(match=Match(l4_dst=80)), now=0.0)
        table.insert(entry(match=Match(l4_dst=81)), now=1.0)
        # Touch the older entry so the newer one becomes the LRU victim.
        table.lookup(key(80)).touch(5.0, 1)
        evicted = table.insert(entry(match=Match(l4_dst=82)), now=6.0)
        assert len(evicted) == 1
        assert evicted[0].match == Match(l4_dst=81)
        assert len(table) == 2

    def test_occupancy(self):
        table = FlowTable(capacity=4)
        table.insert(entry(match=Match(l4_dst=1)))
        assert table.occupancy == 0.25

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=65535)),
                    max_size=40))
    def test_size_never_exceeds_capacity_with_lru(self, inserts):
        table = FlowTable(capacity=5, eviction_policy="lru")
        now = 0.0
        for priority, port in inserts:
            now += 1.0
            table.insert(entry(priority=priority,
                               match=Match(l4_dst=port)), now=now)
            assert len(table) <= 5


class TestSizeAndOccupancy:
    def test_unbounded_occupancy_is_zero_not_nan(self):
        table = FlowTable()  # no capacity
        table.insert(entry(match=Match(l4_dst=1)))
        table.insert(entry(match=Match(l4_dst=2)))
        assert table.occupancy == 0.0

    def test_empty_unbounded_occupancy_is_zero(self):
        assert FlowTable().occupancy == 0.0

    def test_size_tracks_count(self):
        table = FlowTable()
        assert table.size == 0
        table.insert(entry(match=Match(l4_dst=1)))
        table.insert(entry(match=Match(l4_dst=2)))
        assert table.size == 2
        table.delete(match=Match(l4_dst=1))
        assert table.size == 1

    def test_has_timeouts_transitions(self):
        table = FlowTable()
        assert not table.has_timeouts
        table.insert(entry(match=Match(l4_dst=1), hard_timeout=1.0),
                     now=0.0)
        assert table.has_timeouts
        table.expire(5.0)
        assert not table.has_timeouts


class TestChangeNotification:
    def test_on_change_fires_for_mutations_only(self):
        table = FlowTable()
        bumps = []
        table.on_change = lambda: bumps.append(1)
        table.insert(entry(match=Match(l4_dst=1), hard_timeout=1.0))
        assert len(bumps) == 1
        table.lookup(key(1))                 # reads don't notify
        assert len(bumps) == 1
        table.delete(match=Match(l4_dst=99))  # no-op delete
        assert len(bumps) == 1
        table.expire(0.5)                     # nothing expired yet
        assert len(bumps) == 1
        table.expire(2.0)
        assert len(bumps) == 2

    def test_exact_index_agrees_with_scan_on_full_match(self):
        # A fully-specified match lands in the exact sub-index; lookup
        # must honour priority against wildcard entries around it.
        full = Match(
            in_port=1,
            eth_src="00:00:00:00:00:01",
            eth_dst="00:00:00:00:00:02",
            eth_type=0x0800,
            vlan_vid=VLAN_ABSENT,
            ip_src="10.0.0.1",
            ip_dst="10.0.0.2",
            ip_proto=17,
            ip_dscp=0,
            l4_src=1,
            l4_dst=80,
        )
        table = FlowTable()
        low = entry(priority=1, match=Match(l4_dst=80), port=9)
        exact = FlowEntry(full, [Output(2)], priority=5)
        high = entry(priority=7, match=Match(l4_dst=80), port=3)
        table.insert(low)
        table.insert(exact)
        assert table.lookup(key(80)) is exact
        table.insert(high)
        assert table.lookup(key(80)) is high
        table.delete(match=Match(l4_dst=80), priority=7, strict=True)
        assert table.lookup(key(80)) is exact
