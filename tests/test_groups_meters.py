"""Group table and meter semantics."""

import pytest

from repro.dataplane import (
    Bucket,
    FlowKey,
    GroupEntry,
    GroupTable,
    GroupType,
    MeterEntry,
    MeterTable,
    Output,
)
from repro.errors import DataplaneError
from repro.packet import Ethernet, IPv4, UDP


def key(sport=1):
    pkt = (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
           / IPv4(src="10.0.0.1", dst="10.0.0.2")
           / UDP(src_port=sport, dst_port=9) / b"")
    return FlowKey.from_packet(pkt, in_port=1)


def always_live(_port):
    return True


class TestGroupTypes:
    def test_all_returns_every_bucket(self):
        group = GroupEntry(1, GroupType.ALL,
                           [Bucket([Output(1)]), Bucket([Output(2)])])
        assert len(group.select_buckets(key(), always_live)) == 2

    def test_indirect_requires_single_bucket(self):
        with pytest.raises(DataplaneError):
            GroupEntry(1, GroupType.INDIRECT,
                       [Bucket([Output(1)]), Bucket([Output(2)])])
        group = GroupEntry(1, GroupType.INDIRECT, [Bucket([Output(3)])])
        assert group.select_buckets(key(), always_live)[0].actions == [
            Output(3)
        ]

    def test_select_is_deterministic_per_flow(self):
        group = GroupEntry(1, GroupType.SELECT,
                           [Bucket([Output(1)]), Bucket([Output(2)])])
        first = group.select_buckets(key(5), always_live)
        for _ in range(10):
            assert group.select_buckets(key(5), always_live) == first

    def test_select_spreads_different_flows(self):
        group = GroupEntry(1, GroupType.SELECT,
                           [Bucket([Output(1)]), Bucket([Output(2)])])
        chosen = {
            group.select_buckets(key(sport), always_live)[0].actions[0].port
            for sport in range(64)
        }
        assert chosen == {1, 2}

    def test_select_respects_weights(self):
        group = GroupEntry(1, GroupType.SELECT, [
            Bucket([Output(1)], weight=9),
            Bucket([Output(2)], weight=1),
        ])
        counts = {1: 0, 2: 0}
        for sport in range(500):
            port = group.select_buckets(key(sport),
                                        always_live)[0].actions[0].port
            counts[port] += 1
        assert counts[1] > counts[2] * 3

    def test_fast_failover_prefers_first_live(self):
        group = GroupEntry(1, GroupType.FAST_FAILOVER, [
            Bucket([Output(1)], watch_port=1),
            Bucket([Output(2)], watch_port=2),
        ])
        live = {1: True, 2: True}
        pick = group.select_buckets(key(), lambda p: live[p])
        assert pick[0].actions == [Output(1)]
        live[1] = False
        pick = group.select_buckets(key(), lambda p: live[p])
        assert pick[0].actions == [Output(2)]

    def test_fast_failover_all_dead_returns_nothing(self):
        group = GroupEntry(1, GroupType.FAST_FAILOVER, [
            Bucket([Output(1)], watch_port=1),
        ])
        assert group.select_buckets(key(), lambda p: False) == []

    def test_live_bucket_count(self):
        group = GroupEntry(1, GroupType.FAST_FAILOVER, [
            Bucket([Output(1)], watch_port=1),
            Bucket([Output(2)], watch_port=2),
        ])
        assert group.live_bucket_count(lambda p: p == 2) == 1

    def test_validation(self):
        with pytest.raises(DataplaneError):
            GroupEntry(1, "bogus", [Bucket([Output(1)])])
        with pytest.raises(DataplaneError):
            GroupEntry(1, GroupType.ALL, [])
        with pytest.raises(DataplaneError):
            Bucket([Output(1)], weight=0)


class TestGroupTable:
    def test_add_get_delete(self):
        table = GroupTable()
        table.add(GroupEntry(7, GroupType.ALL, [Bucket([Output(1)])]))
        assert 7 in table
        assert table.get(7).group_id == 7
        table.delete(7)
        assert 7 not in table
        with pytest.raises(DataplaneError):
            table.get(7)

    def test_duplicate_add_rejected(self):
        table = GroupTable()
        table.add(GroupEntry(7, GroupType.ALL, [Bucket([Output(1)])]))
        with pytest.raises(DataplaneError):
            table.add(GroupEntry(7, GroupType.ALL, [Bucket([Output(2)])]))

    def test_modify_requires_existing(self):
        table = GroupTable()
        with pytest.raises(DataplaneError):
            table.modify(GroupEntry(7, GroupType.ALL,
                                    [Bucket([Output(1)])]))


class TestMeters:
    def test_burst_then_throttle(self):
        meter = MeterEntry(1, rate_bps=8000, burst_bytes=1000)  # 1 KB/s
        assert meter.allow(1000, now=0.0)   # consumes the whole bucket
        assert not meter.allow(100, now=0.0)
        # After 0.1 s, 100 bytes of tokens have accrued.
        assert meter.allow(100, now=0.1)
        assert not meter.allow(100, now=0.1)

    def test_sustained_rate_enforced(self):
        meter = MeterEntry(1, rate_bps=80_000, burst_bytes=1000)  # 10 KB/s
        passed = 0
        t = 0.0
        for _ in range(1000):  # offer 100 KB over 1 s in 100 B packets
            t += 0.001
            if meter.allow(100, now=t):
                passed += 1
        # ~10 KB/s sustained plus the 1 KB initial burst.
        assert 90 <= passed <= 120

    def test_bucket_never_exceeds_burst(self):
        meter = MeterEntry(1, rate_bps=8_000_000, burst_bytes=500)
        assert not meter.allow(501, now=100.0)  # long idle, still capped
        assert meter.allow(500, now=100.0)

    def test_counters_and_drop_rate(self):
        meter = MeterEntry(1, rate_bps=8000, burst_bytes=100)
        meter.allow(100, now=0.0)
        meter.allow(100, now=0.0)
        assert meter.passed_packets == 1
        assert meter.dropped_packets == 1
        assert meter.drop_rate == 0.5

    def test_validation(self):
        with pytest.raises(DataplaneError):
            MeterEntry(1, rate_bps=0)

    def test_meter_table_crud(self):
        table = MeterTable()
        table.add(MeterEntry(1, rate_bps=1000))
        with pytest.raises(DataplaneError):
            table.add(MeterEntry(1, rate_bps=1000))
        table.modify(MeterEntry(1, rate_bps=2000))
        assert table.get(1).rate_bps == 2000
        table.delete(1)
        with pytest.raises(DataplaneError):
            table.get(1)
