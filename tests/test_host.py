"""Host mini-stack tests over a two-host wire (no switch)."""

import pytest

from repro.errors import TopologyError
from repro.netem import Attachment, Host, Link
from repro.packet import ARP, Ethernet, ICMP, IPv4, MACAddress, UDP
from repro.sim import Simulator


@pytest.fixture
def wire():
    """Two hosts joined by a direct link."""
    sim = Simulator()
    h1 = Host(sim, "h1", MACAddress.local(1), "10.0.0.1")
    h2 = Host(sim, "h2", MACAddress.local(2), "10.0.0.2")
    link = Link(
        sim,
        Attachment("h1", 0, h1.receive),
        Attachment("h2", 0, h2.receive),
        delay=0.001,
    )
    h1.attach(link)
    h2.attach(link)
    return sim, h1, h2


class TestARP:
    def test_resolution_then_delivery(self, wire):
        sim, h1, h2 = wire
        got = []
        h2.bind_udp(9, lambda pkt, host: got.append(pkt))
        h1.send_udp("10.0.0.2", 1234, 9, b"hello")
        sim.run_until_idle()
        assert len(got) == 1
        assert got[0].payload == b"hello"
        # Both sides learned each other from the exchange.
        assert h1.arp_table[h2.ip] == h2.mac
        assert h2.arp_table[h1.ip] == h1.mac

    def test_pending_packets_flushed_in_order(self, wire):
        sim, h1, h2 = wire
        got = []
        h2.bind_udp(9, lambda pkt, host: got.append(pkt.payload))
        for i in range(3):
            h1.send_udp("10.0.0.2", 1234, 9, bytes([i]))
        sim.run_until_idle()
        assert got == [b"\x00", b"\x01", b"\x02"]

    def test_static_arp_skips_resolution(self, wire):
        sim, h1, h2 = wire
        h1.add_static_arp("10.0.0.2", h2.mac)
        seen = []
        h2.on_receive = lambda pkt: seen.append(pkt)
        h1.send_udp("10.0.0.2", 1, 9, b"x")
        sim.run_until_idle()
        assert all(ARP not in pkt for pkt in seen)

    def test_unresolvable_address_gives_up(self, wire):
        sim, h1, h2 = wire
        h1.send_udp("10.0.0.99", 1, 9, b"lost")
        sim.run_until_idle()
        # Three retries then surrender; no pending state left behind.
        assert h1._arp_pending == {}
        assert sim.now >= 2.0  # retried at 1 s intervals

    def test_arp_request_not_answered_by_wrong_host(self, wire):
        sim, h1, h2 = wire
        replies = []
        h1.on_receive = lambda pkt: (
            replies.append(pkt) if ARP in pkt and pkt[ARP].is_reply
            else None
        )
        request = (
            Ethernet(dst="ff:ff:ff:ff:ff:ff", src=h1.mac)
            / ARP(opcode=ARP.REQUEST, sender_mac=h1.mac,
                  sender_ip=h1.ip, target_ip="10.0.0.50")
        )
        h1.send_frame(request)
        sim.run_until_idle()
        assert replies == []


class TestPing:
    def test_single_ping_rtt(self, wire):
        sim, h1, h2 = wire
        session = h1.ping("10.0.0.2", count=1)
        sim.run_until_idle()
        assert session.received == 1
        assert session.lost == 0
        # ARP adds one RTT; the echo adds another: ≥ 4 ms total, but the
        # reported RTT covers only the ICMP exchange after queueing.
        assert 0.002 <= session.avg_rtt < 0.01

    def test_multi_ping_statistics(self, wire):
        sim, h1, h2 = wire
        session = h1.ping("10.0.0.2", count=5, interval=0.1)
        sim.run_until_idle()
        assert session.received == 5
        assert session.min_rtt <= session.avg_rtt <= session.max_rtt
        assert session.finished

    def test_ping_timeout_counts_lost(self, wire):
        sim, h1, h2 = wire
        session = h1.ping("10.0.0.99", count=2, interval=0.1,
                          timeout=1.0)
        sim.run_until_idle()
        assert session.received == 0
        assert session.lost == 2

    def test_done_signal_fires(self, wire):
        sim, h1, h2 = wire
        session = h1.ping("10.0.0.2", count=2, interval=0.05)
        finished = []

        def waiter():
            result = yield session.done.wait()
            finished.append(result.received)

        sim.spawn(waiter())
        sim.run_until_idle()
        assert finished == [2]

    def test_concurrent_sessions_do_not_cross(self, wire):
        sim, h1, h2 = wire
        s1 = h1.ping("10.0.0.2", count=2, interval=0.05)
        s2 = h1.ping("10.0.0.2", count=3, interval=0.05)
        sim.run_until_idle()
        assert s1.received == 2
        assert s2.received == 3


class TestUDP:
    def test_port_demux(self, wire):
        sim, h1, h2 = wire
        on_9, on_10, fallback = [], [], []
        h2.bind_udp(9, lambda pkt, host: on_9.append(pkt))
        h2.bind_udp(10, lambda pkt, host: on_10.append(pkt))
        h2.on_udp = lambda pkt, host: fallback.append(pkt)
        h1.send_udp("10.0.0.2", 1, 9, b"a")
        h1.send_udp("10.0.0.2", 1, 10, b"b")
        h1.send_udp("10.0.0.2", 1, 11, b"c")
        sim.run_until_idle()
        assert len(on_9) == 1 and len(on_10) == 1 and len(fallback) == 1

    def test_double_bind_rejected(self, wire):
        sim, h1, h2 = wire
        h2.bind_udp(9, lambda pkt, host: None)
        with pytest.raises(TopologyError):
            h2.bind_udp(9, lambda pkt, host: None)

    def test_unbind(self, wire):
        sim, h1, h2 = wire
        got = []
        h2.bind_udp(9, lambda pkt, host: got.append(1))
        h2.unbind_udp(9)
        h1.send_udp("10.0.0.2", 1, 9, b"x")
        sim.run_until_idle()
        assert got == []

    def test_frames_for_other_macs_ignored(self, wire):
        sim, h1, h2 = wire
        got = []
        h2.on_udp = lambda pkt, host: got.append(pkt)
        stray = (
            Ethernet(dst="00:00:00:00:00:77", src=h1.mac)
            / IPv4(src=h1.ip, dst=h2.ip)
            / UDP(src_port=1, dst_port=9) / b"not-mine"
        )
        h1.send_frame(stray)
        sim.run_until_idle()
        assert got == []

    def test_counters(self, wire):
        sim, h1, h2 = wire
        h1.add_static_arp("10.0.0.2", h2.mac)
        h1.send_udp("10.0.0.2", 1, 9, b"x")
        sim.run_until_idle()
        assert h1.tx_packets == 1
        assert h2.rx_packets == 1
        assert h2.rx_bytes > 0


class TestAttachment:
    def test_double_attach_rejected(self, wire):
        sim, h1, h2 = wire
        with pytest.raises(TopologyError):
            h1.attach(object())

    def test_send_without_link_rejected(self):
        sim = Simulator()
        lonely = Host(sim, "x", MACAddress.local(9), "10.0.0.9")
        with pytest.raises(TopologyError):
            lonely.send_udp("10.0.0.1", 1, 2, b"")
