"""Host tracker and path service tests."""

import pytest

from repro.controller import (
    HostDiscovered,
    HostMoved,
    PathService,
)
from repro.core import ZenPlatform
from repro.errors import ControllerError
from repro.netem import Topology


@pytest.fixture
def platform():
    return ZenPlatform(
        Topology.linear(3, hosts_per_switch=1, bandwidth_bps=1e9)
    ).start()


class TestHostTracker:
    def test_hosts_learned_from_traffic(self, platform):
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.ping(h2.ip, count=1)
        platform.run(3.0)
        tracker = platform.hosts
        assert tracker.lookup_ip(h1.ip) is not None
        assert tracker.lookup_ip(h2.ip) is not None
        entry = tracker.lookup_mac(h1.mac)
        assert entry.dpid == platform.switch("s1").dpid
        assert entry.port == platform.net.port_of("s1", "h1")

    def test_host_discovered_event(self, platform):
        events = []
        platform.controller.subscribe(HostDiscovered, events.append)
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.ping(h2.ip, count=1)
        platform.run(3.0)
        macs = {str(e.mac) for e in events}
        assert str(h1.mac) in macs

    def test_switch_macs_never_tracked(self, platform):
        platform.run(5.0)  # plenty of LLDP flying around
        tracker = platform.hosts
        for dp in platform.net.switches.values():
            for port in dp.ports.values():
                assert tracker.lookup_mac(port.mac) is None

    def test_require_ip_raises_for_unknown(self, platform):
        with pytest.raises(ControllerError):
            platform.hosts.require_ip("99.99.99.99")

    def test_host_move_detected(self):
        # Build a topology where h1 can "move": we simulate the move by
        # re-sending its traffic from another attachment.
        platform = ZenPlatform(
            Topology.linear(2, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        h1, h2 = platform.host("h1"), platform.host("h2")
        h1.ping(h2.ip, count=1)
        platform.run(3.0)
        moves = []
        platform.controller.subscribe(HostMoved, moves.append)
        tracker = platform.hosts
        entry = tracker.lookup_mac(h1.mac)
        old = entry.location
        # Inject a frame with h1's source MAC at h2's switch edge port.
        s2 = platform.switch("s2")
        from repro.packet import ARP, Ethernet

        frame = (Ethernet(dst="ff:ff:ff:ff:ff:ff", src=h1.mac)
                 / ARP(opcode=ARP.REQUEST, sender_mac=h1.mac,
                       sender_ip=h1.ip, target_ip=h2.ip))
        s2.inject(frame, platform.net.port_of("s2", "h2"))
        platform.run(1.0)
        assert len(moves) == 1
        assert moves[0].mac == h1.mac
        assert (moves[0].old_dpid, moves[0].old_port) == old


class TestPathService:
    @pytest.fixture
    def paths(self):
        platform = ZenPlatform(
            Topology.ring(5, hosts_per_switch=0, bandwidth_bps=1e9)
        ).start()
        return platform, PathService(platform.discovery)

    def test_shortest_path(self, paths):
        platform, service = paths
        path = service.shortest_path(1, 3)
        assert path in ([1, 2, 3], [1, 5, 4, 3])
        assert path == [1, 2, 3]  # hop-count shortest on a 5-ring
        assert service.distance(1, 3) == 2

    def test_k_shortest_paths(self, paths):
        platform, service = paths
        result = service.k_shortest_paths(1, 3, k=2)
        assert len(result) == 2
        assert result[0] == [1, 2, 3]
        assert result[1] == [1, 5, 4, 3]
        assert len(service.k_shortest_paths(1, 3, k=10)) == 2

    def test_ecmp_paths_on_even_ring(self):
        platform = ZenPlatform(
            Topology.ring(4, hosts_per_switch=0, bandwidth_bps=1e9)
        ).start()
        service = PathService(platform.discovery)
        ecmp = service.ecmp_paths(1, 3)
        assert sorted(ecmp) == [[1, 2, 3], [1, 4, 3]]

    def test_unknown_nodes(self, paths):
        platform, service = paths
        assert service.shortest_path(1, 99) is None
        assert service.k_shortest_paths(99, 1, 3) == []
        assert service.distance(1, 99) is None

    def test_path_ports_installable(self, paths):
        platform, service = paths
        path = service.shortest_path(1, 3)
        hops = service.path_ports(path)
        assert len(hops) == len(path) - 1
        # Each hop's port must agree with the emulator's wiring.
        net = platform.net
        for (dpid, port), nxt in zip(hops, path[1:]):
            name = net.switch_name(dpid)
            assert net.port_of(name, net.switch_name(nxt)) == port

    def test_path_uses_link(self, paths):
        platform, service = paths
        assert service.path_uses_link([1, 2, 3], 2, 3)
        assert service.path_uses_link([1, 2, 3], 3, 2)
        assert not service.path_uses_link([1, 2, 3], 1, 3)

    def test_k_must_be_positive(self, paths):
        platform, service = paths
        with pytest.raises(ControllerError):
            service.k_shortest_paths(1, 2, k=0)
