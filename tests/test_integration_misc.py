"""Cross-layer integration tests for paths not covered elsewhere:
VLAN tagging across a network, TTL decrement chains, keepalives,
stats kinds through handles, and eviction notifications."""


from repro.controller import Controller
from repro.core import ZenPlatform
from repro.dataplane import (
    Datapath,
    DecTTL,
    FlowEntry,
    Match,
    Output,
    PopVLAN,
    PushVLAN,
    VLAN_ABSENT,
)
from repro.netem import Network, Tap, Topology
from repro.packet import Ethernet, ICMP, IPv4, UDP, VLAN
from repro.sim import Simulator
from repro.southbound import (
    ControlChannel,
    EchoRequest,
    StatsKind,
    SwitchAgent,
)


class TestVlanTransportEndToEnd:
    """A provider-edge scenario: tag at ingress, carry tagged across
    the core, pop at egress — hosts never see the tag."""

    def build(self):
        net = Network(Topology.linear(3, hosts_per_switch=1,
                                      bandwidth_bps=1e9),
                      miss_behaviour="drop")
        h1, h3 = net.host("h1"), net.host("h3")
        h1.add_static_arp(h3.ip, h3.mac)
        h3.add_static_arp(h1.ip, h1.mac)
        s1, s2, s3 = (net.switch(n) for n in ("s1", "s2", "s3"))
        p = net.port_of
        # Ingress s1: tag traffic from h1, forward to core.
        s1.install_flow(FlowEntry(
            Match(in_port=p("s1", "h1"), vlan_vid=VLAN_ABSENT),
            [PushVLAN(100), Output(p("s1", "s2"))], priority=10))
        # Core s2: switch on the tag only.
        s2.install_flow(FlowEntry(
            Match(vlan_vid=100, in_port=p("s2", "s1")),
            [Output(p("s2", "s3"))], priority=10))
        s2.install_flow(FlowEntry(
            Match(vlan_vid=100, in_port=p("s2", "s3")),
            [Output(p("s2", "s1"))], priority=10))
        # Egress s3: pop and deliver.
        s3.install_flow(FlowEntry(
            Match(vlan_vid=100, in_port=p("s3", "s2")),
            [PopVLAN(), Output(p("s3", "h3"))], priority=10))
        # Reverse direction mirrors it.
        s3.install_flow(FlowEntry(
            Match(in_port=p("s3", "h3"), vlan_vid=VLAN_ABSENT),
            [PushVLAN(100), Output(p("s3", "s2"))], priority=10))
        s1.install_flow(FlowEntry(
            Match(vlan_vid=100, in_port=p("s1", "s2")),
            [PopVLAN(), Output(p("s1", "h1"))], priority=10))
        return net, h1, h3

    def test_core_carries_tagged_hosts_see_untagged(self):
        net, h1, h3 = self.build()
        core_tap = Tap(net.link("s2", "s3"))
        host_frames = []
        h3.on_receive = lambda pkt: host_frames.append(pkt)
        session = h1.ping(h3.ip, count=2, interval=0.1)
        net.run(3.0)
        assert session.received == 2
        # Every frame on the core trunk is tagged with VID 100.
        core_data = [r for r in core_tap if ICMP in r.packet]
        assert core_data
        assert all(VLAN in r.packet
                   and r.packet[VLAN].vid == 100 for r in core_data)
        # Frames delivered to the host are untagged.
        delivered = [pkt for pkt in host_frames if ICMP in pkt]
        assert delivered
        assert all(VLAN not in pkt for pkt in delivered)


class TestTTLChain:
    def test_ttl_decrements_per_hop_and_expires(self):
        net = Network(Topology.linear(4, hosts_per_switch=1,
                                      bandwidth_bps=1e9),
                      miss_behaviour="drop")
        h1, h4 = net.host("h1"), net.host("h4")
        h1.add_static_arp(h4.ip, h4.mac)
        # Router-style: every switch decrements TTL then forwards h1->h4.
        chain = ["s1", "s2", "s3", "s4"]
        for here, there in zip(chain, chain[1:]):
            net.switch(here).install_flow(FlowEntry(
                Match(eth_dst=h4.mac),
                [DecTTL(), Output(net.port_of(here, there))],
                priority=10))
        net.switch("s4").install_flow(FlowEntry(
            Match(eth_dst=h4.mac),
            [DecTTL(), Output(net.port_of("s4", "h4"))], priority=10))
        got = []
        h4.on_receive = lambda pkt: got.append(pkt)
        h1.send_udp(h4.ip, 1, 9, b"x")  # default TTL 64
        net.run(1.0)
        data = [p for p in got if UDP in p]
        assert len(data) == 1
        assert data[0][IPv4].ttl == 64 - 4
        # A TTL that expires mid-path punts instead of delivering.
        punted = []
        net.switch("s2").on_packet_in = (
            lambda pkt, port, reason: punted.append(reason))
        # TTL 2 survives s1's decrement and expires at s2.
        frame = (Ethernet(dst=h4.mac, src=h1.mac)
                 / IPv4(src=h1.ip, dst=h4.ip, ttl=2)
                 / UDP(src_port=1, dst_port=9) / b"dies")
        h1.send_frame(frame)
        net.run(1.0)
        assert "ttl_expired" in punted
        assert len([p for p in got if UDP in p]) == 1  # no new delivery


class TestKeepalive:
    def test_controller_answers_switch_echoes(self):
        sim = Simulator()
        controller = Controller(sim)
        dp = Datapath(1, sim)
        dp.add_port(1)
        channel = ControlChannel(sim, latency=0.001)
        SwitchAgent(dp, channel)
        controller.accept_channel(channel)
        channel.connect()
        sim.run_until_idle()
        replies = []
        channel.switch_end.request(EchoRequest(b"alive?"),
                                   replies.append)
        sim.run_until_idle()
        assert len(replies) == 1
        assert replies[0].data == b"alive?"


class TestStatsThroughHandles:
    def test_table_and_aggregate_stats(self, linear3):
        platform = linear3
        platform.ping_all(count=1, settle=3.0)
        handle = platform.controller.switch(1)
        got = {}
        handle.request_stats(StatsKind.TABLE,
                             lambda r: got.__setitem__("table", r))
        handle.request_stats(StatsKind.AGGREGATE,
                             lambda r: got.__setitem__("agg", r))
        platform.run(0.5)
        tables = got["table"].entries
        assert tables[0]["lookups"] > 0
        agg = got["agg"].entries[0]
        assert agg["flows"] == platform.switch("s1").flow_count()
        assert agg["packets"] > 0


class TestEvictionNotification:
    def test_lru_eviction_reported_to_controller(self):
        platform = ZenPlatform(
            Topology.single(2, bandwidth_bps=1e9),
            profile="bare",
            table_capacity=3,
            eviction_policy="lru",
        ).start()
        from repro.controller import FlowRemovedEvent
        from repro.southbound import FlowMod

        evictions = []
        platform.controller.subscribe(
            FlowRemovedEvent,
            lambda ev: evictions.append(ev)
            if ev.reason == "eviction" else None,
        )
        handle = platform.controller.switch(1)
        # The LLDP punt rule occupies one slot; four more overflow.
        for port in range(4):
            handle.add_flow(Match(l4_dst=port), [Output(1)],
                            priority=10, notify_removed=True)
        platform.run(0.5)
        assert len(evictions) >= 1
        assert platform.switch("s1").flow_count() <= 3
