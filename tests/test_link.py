"""Link model tests: latency, bandwidth, queueing, loss, failure."""

import pytest

from repro.errors import TopologyError
from repro.netem import Attachment, Link
from repro.packet import Ethernet
from repro.sim import Simulator


def frame(size=100):
    payload = b"\x00" * max(size - 14, 0)
    return Ethernet(dst="00:00:00:00:00:02",
                    src="00:00:00:00:00:01") / payload


def make_link(sim, **kw):
    a_in, b_in = [], []
    a = Attachment("a", 1, lambda pkt: a_in.append((sim.now, pkt)))
    b = Attachment("b", 1, lambda pkt: b_in.append((sim.now, pkt)))
    return Link(sim, a, b, **kw), a_in, b_in


class TestDelivery:
    def test_propagation_delay(self):
        sim = Simulator()
        link, a_in, b_in = make_link(sim, delay=0.005, bandwidth_bps=0)
        link.send_from("a", frame())
        sim.run_until_idle()
        assert len(b_in) == 1
        assert b_in[0][0] == pytest.approx(0.005)
        assert a_in == []

    def test_bidirectional(self):
        sim = Simulator()
        link, a_in, b_in = make_link(sim, delay=0.001)
        link.send_from("a", frame())
        link.send_from("b", frame())
        sim.run_until_idle()
        assert len(a_in) == 1 and len(b_in) == 1

    def test_unknown_sender_rejected(self):
        sim = Simulator()
        link, _, _ = make_link(sim)
        with pytest.raises(TopologyError):
            link.send_from("zebra", frame())

    def test_serialisation_delay(self):
        sim = Simulator()
        # 1000-byte frame at 1 Mb/s = 8 ms of serialisation.
        link, _, b_in = make_link(sim, delay=0.0, bandwidth_bps=1e6)
        link.send_from("a", frame(1000))
        sim.run_until_idle()
        assert b_in[0][0] == pytest.approx(0.008)

    def test_back_to_back_frames_queue(self):
        sim = Simulator()
        link, _, b_in = make_link(sim, delay=0.0, bandwidth_bps=1e6)
        link.send_from("a", frame(1000))
        link.send_from("a", frame(1000))
        sim.run_until_idle()
        arrivals = [t for t, _ in b_in]
        assert arrivals == [pytest.approx(0.008), pytest.approx(0.016)]

    def test_directions_do_not_contend(self):
        sim = Simulator()
        link, a_in, b_in = make_link(sim, delay=0.0, bandwidth_bps=1e6)
        link.send_from("a", frame(1000))
        link.send_from("b", frame(1000))
        sim.run_until_idle()
        assert a_in[0][0] == pytest.approx(0.008)
        assert b_in[0][0] == pytest.approx(0.008)


class TestQueueing:
    def test_drop_tail_when_backlog_full(self):
        sim = Simulator()
        link, _, b_in = make_link(sim, delay=0.0, bandwidth_bps=1e6,
                                  queue_capacity=2)
        for _ in range(5):
            link.send_from("a", frame(1000))
        sim.run_until_idle()
        assert len(b_in) == 2
        ab, _ = link.direction_stats()
        assert ab["dropped_queue"] == 3

    def test_queue_drains_over_time(self):
        sim = Simulator()
        link, _, b_in = make_link(sim, delay=0.0, bandwidth_bps=1e6,
                                  queue_capacity=2)
        link.send_from("a", frame(1000))
        link.send_from("a", frame(1000))
        sim.run_until_idle()
        link.send_from("a", frame(1000))
        sim.run_until_idle()
        assert len(b_in) == 3


class TestLoss:
    def test_lossy_link_drops_some(self):
        sim = Simulator(seed=3)
        link, _, b_in = make_link(sim, delay=0.0, loss_rate=0.5)
        for _ in range(200):
            link.send_from("a", frame())
        sim.run_until_idle()
        assert 50 < len(b_in) < 150
        _, stats = link.direction_stats()
        ab, _ = link.direction_stats()
        assert ab["dropped_loss"] == 200 - len(b_in)

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            link, _, b_in = make_link(sim, loss_rate=0.3)
            for _ in range(50):
                link.send_from("a", frame())
            sim.run_until_idle()
            return len(b_in)

        assert run(1) == run(1)

    def test_invalid_loss_rate(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            make_link(sim, loss_rate=1.0)


class TestFailure:
    def test_failed_link_delivers_nothing(self):
        sim = Simulator()
        link, _, b_in = make_link(sim, delay=0.001)
        link.fail()
        link.send_from("a", frame())
        sim.run_until_idle()
        assert b_in == []

    def test_recovery_restores_delivery(self):
        sim = Simulator()
        link, _, b_in = make_link(sim, delay=0.001)
        link.fail()
        link.send_from("a", frame())
        link.recover()
        link.send_from("a", frame())
        sim.run_until_idle()
        assert len(b_in) == 1


class TestUtilisation:
    def test_utilisation_tracks_busy_fraction(self):
        sim = Simulator()
        link, _, _ = make_link(sim, delay=0.0, bandwidth_bps=1e6,
                               queue_capacity=0)
        # 125 frames × 1000 B × 8 = 1 Mb, sent over 2 simulated seconds
        # => ~50% utilisation.
        for i in range(125):
            sim.schedule(i * 0.016, link.send_from, "a", frame(1000))
        sim.run(until=2.0)
        assert link.max_utilisation == pytest.approx(0.5, rel=0.05)

    def test_window_reset(self):
        sim = Simulator()
        link, _, _ = make_link(sim, delay=0.0, bandwidth_bps=1e6)
        link.send_from("a", frame(1000))
        sim.run(until=1.0)
        link.reset_utilisation_window()
        sim.run(until=2.0)
        assert link.max_utilisation == 0.0

    def test_other_end(self):
        sim = Simulator()
        link, _, _ = make_link(sim)
        assert link.other_end("a").node_name == "b"
        assert link.other_end("b").node_name == "a"
        with pytest.raises(TopologyError):
            link.other_end("c")
