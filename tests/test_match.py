"""Match and FlowKey semantics: the correctness core of the dataplane."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane import FlowKey, Match, VLAN_ABSENT
from repro.errors import DataplaneError
from repro.packet import (
    ARP,
    Ethernet,
    ICMP,
    IPv4,
    IPv4Address,
    TCP,
    UDP,
    VLAN,
)

MAC_A = "00:00:00:00:00:0a"
MAC_B = "00:00:00:00:00:0b"


def udp_key(**overrides):
    pkt = (Ethernet(dst=MAC_B, src=MAC_A)
           / IPv4(src="10.0.0.1", dst="10.0.1.2", dscp=10)
           / UDP(src_port=1000, dst_port=2000) / b"")
    key = FlowKey.from_packet(pkt, in_port=3)
    for name, value in overrides.items():
        setattr(key, name, value)
    return key


class TestFlowKeyExtraction:
    def test_udp_fields(self):
        key = udp_key()
        assert key.in_port == 3
        assert key.eth_src == MAC_A
        assert key.eth_dst == MAC_B
        assert key.eth_type == 0x0800
        assert key.vlan_vid == VLAN_ABSENT
        assert key.ip_src == "10.0.0.1"
        assert key.ip_dst == "10.0.1.2"
        assert key.ip_proto == 17
        assert key.ip_dscp == 10
        assert (key.l4_src, key.l4_dst) == (1000, 2000)

    def test_tcp_ports_extracted(self):
        pkt = Ethernet() / IPv4() / TCP(src_port=5, dst_port=6) / b""
        key = FlowKey.from_packet(pkt)
        assert (key.l4_src, key.l4_dst) == (5, 6)

    def test_icmp_type_code_ride_l4(self):
        pkt = Ethernet() / IPv4() / ICMP(8, 0) / b""
        key = FlowKey.from_packet(pkt)
        assert (key.l4_src, key.l4_dst) == (8, 0)

    def test_arp_fields_ride_ip(self):
        pkt = Ethernet() / ARP(opcode=ARP.REQUEST,
                               sender_ip="10.0.0.1",
                               target_ip="10.0.0.9")
        key = FlowKey.from_packet(pkt)
        assert key.ip_src == "10.0.0.1"
        assert key.ip_dst == "10.0.0.9"
        assert key.ip_proto == ARP.REQUEST
        assert key.l4_src is None

    def test_vlan_inner_ethertype(self):
        pkt = (Ethernet() / VLAN(vid=7) / IPv4(src="1.1.1.1",
                                               dst="2.2.2.2") / b"")
        key = FlowKey.from_packet(pkt)
        assert key.vlan_vid == 7
        assert key.eth_type == 0x0800  # the inner protocol, not 0x8100


class TestMatchSemantics:
    def test_wildcard_matches_everything(self):
        assert Match().matches(udp_key())
        assert Match().is_wildcard

    def test_exact_field_match(self):
        assert Match(l4_dst=2000).matches(udp_key())
        assert not Match(l4_dst=2001).matches(udp_key())

    def test_missing_field_never_matches(self):
        arp_key = FlowKey.from_packet(Ethernet() / ARP())
        assert not Match(l4_dst=0).matches(arp_key)

    def test_ip_prefix_match(self):
        assert Match(ip_dst="10.0.1.0/24").matches(udp_key())
        assert not Match(ip_dst="10.0.2.0/24").matches(udp_key())

    def test_vlan_absent_matches_untagged_only(self):
        assert Match(vlan_vid=VLAN_ABSENT).matches(udp_key())
        assert not Match(vlan_vid=5).matches(udp_key())
        tagged = udp_key(vlan_vid=5)
        assert Match(vlan_vid=5).matches(tagged)
        assert not Match(vlan_vid=VLAN_ABSENT).matches(tagged)

    def test_unknown_field_rejected(self):
        with pytest.raises(DataplaneError):
            Match(bogus=1)

    def test_exact_from_key_matches_its_packet(self):
        key = udp_key()
        assert Match.exact(key).matches(key)

    def test_matches_packet_convenience(self):
        pkt = Ethernet(dst=MAC_B, src=MAC_A) / IPv4() / UDP() / b""
        assert Match(eth_dst=MAC_B).matches_packet(pkt)

    def test_equality_and_hash(self):
        a = Match(eth_dst=MAC_B, ip_dst="10.0.0.0/8")
        b = Match(ip_dst="10.0.0.0/8", eth_dst=MAC_B)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_none_fields_ignored(self):
        assert Match(eth_dst=None) == Match()


class TestSubsetOverlapIntersect:
    def test_subset_basics(self):
        narrow = Match(eth_dst=MAC_B, l4_dst=80)
        wide = Match(eth_dst=MAC_B)
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)
        assert narrow.is_subset_of(Match())

    def test_subset_with_prefixes(self):
        assert Match(ip_dst="10.0.1.0/24").is_subset_of(
            Match(ip_dst="10.0.0.0/8"))
        assert not Match(ip_dst="10.0.0.0/8").is_subset_of(
            Match(ip_dst="10.0.1.0/24"))
        assert Match(ip_dst="10.0.1.5").is_subset_of(
            Match(ip_dst="10.0.1.0/24"))

    def test_overlap(self):
        assert Match(eth_dst=MAC_B).overlaps(Match(l4_dst=80))
        assert not Match(l4_dst=80).overlaps(Match(l4_dst=443))
        assert Match(ip_dst="10.0.0.0/8").overlaps(
            Match(ip_dst="10.0.1.0/24"))
        assert not Match(ip_dst="10.0.0.0/8").overlaps(
            Match(ip_dst="11.0.0.0/8"))

    def test_intersect_merges_fields(self):
        merged = Match(eth_dst=MAC_B).intersect(Match(l4_dst=80))
        assert merged == Match(eth_dst=MAC_B, l4_dst=80)

    def test_intersect_conflict_is_none(self):
        assert Match(l4_dst=80).intersect(Match(l4_dst=443)) is None

    def test_intersect_prefixes_takes_longer(self):
        merged = Match(ip_dst="10.0.0.0/8").intersect(
            Match(ip_dst="10.0.1.0/24"))
        assert merged == Match(ip_dst="10.0.1.0/24")

    def test_intersect_prefix_with_exact(self):
        merged = Match(ip_dst="10.0.0.0/8").intersect(
            Match(ip_dst="10.0.1.5"))
        assert merged == Match(ip_dst="10.0.1.5")
        assert Match(ip_dst="11.0.0.0/8").intersect(
            Match(ip_dst="10.0.1.5")) is None

    def test_specificity_ordering(self):
        assert Match().specificity == 0
        assert (Match(ip_dst="10.0.0.0/8").specificity
                < Match(ip_dst="10.0.1.0/24").specificity
                < Match(ip_dst="10.0.1.0/24", l4_dst=80).specificity)

    @given(port=st.integers(min_value=0, max_value=65535),
           prefix=st.integers(min_value=0, max_value=32))
    def test_intersect_with_self_is_identity(self, port, prefix):
        m = Match(l4_dst=port, ip_dst=f"10.1.2.3/{prefix}"
                  if prefix < 32 else "10.1.2.3")
        assert m.intersect(m) == m
        assert m.is_subset_of(m)
        assert m.overlaps(m)

    @given(
        data=st.data(),
    )
    def test_subset_implies_matching_agreement(self, data):
        """If a ⊆ b, every key matched by a must be matched by b."""
        fields = {}
        if data.draw(st.booleans()):
            fields["l4_dst"] = data.draw(
                st.integers(min_value=0, max_value=65535))
        if data.draw(st.booleans()):
            prefix = data.draw(st.integers(min_value=8, max_value=32))
            fields["ip_dst"] = (
                f"10.0.1.2/{prefix}" if prefix < 32 else "10.0.1.2"
            )
        narrow = Match(l4_dst=2000, ip_dst="10.0.1.2")
        wide = Match(**fields)
        key = udp_key(ip_dst=IPv4Address("10.0.1.2"))
        if narrow.is_subset_of(wide) and narrow.matches(key):
            assert wide.matches(key)
