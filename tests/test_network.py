"""Network assembly tests: wiring, port maps, failure injection."""

import pytest

from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.errors import TopologyError
from repro.netem import Network, Topology


def flooded(net):
    """Install flood-everything on every switch (tree topologies only)."""
    for name in net.switches:
        net.switch(name).install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
        )


class TestAssembly:
    def test_nodes_instantiated(self):
        net = Network(Topology.linear(3, hosts_per_switch=2))
        assert len(net.switches) == 3
        assert len(net.hosts) == 6
        assert len(net.links) == 2 + 6

    def test_port_map_is_consistent(self):
        net = Network(Topology.linear(3))
        port = net.port_of("s2", "s1")
        dp = net.switch("s2")
        assert port in dp.ports
        with pytest.raises(TopologyError):
            net.port_of("s1", "s3")  # not adjacent

    def test_lookups_raise_on_unknown(self):
        net = Network(Topology.single(1))
        with pytest.raises(TopologyError):
            net.host("nope")
        with pytest.raises(TopologyError):
            net.switch("nope")
        with pytest.raises(TopologyError):
            net.link("a", "b")

    def test_switch_name_by_dpid(self):
        net = Network(Topology.linear(2))
        assert net.switch_name(net.switch("s2").dpid) == "s2"
        with pytest.raises(TopologyError):
            net.switch_name(999)

    def test_invalid_topology_rejected_at_build(self):
        topo = Topology()
        topo.add_switch()
        topo.add_host()  # never linked
        with pytest.raises(TopologyError):
            Network(topo)


class TestDataflow:
    def test_host_to_host_through_switches(self):
        net = Network(Topology.linear(2, hosts_per_switch=1,
                                      bandwidth_bps=1e9),
                      miss_behaviour="drop")
        flooded(net)
        h1, h2 = net.host("h1"), net.host("h2")
        session = h1.ping(h2.ip, count=2, interval=0.1)
        net.run(5.0)
        assert session.received == 2

    def test_ping_all_full_delivery(self):
        net = Network(Topology.single(3), miss_behaviour="drop")
        flooded(net)
        assert net.ping_all(count=1, settle=2.0) == 1.0

    def test_switch_counters_increment(self):
        net = Network(Topology.single(2), miss_behaviour="drop")
        flooded(net)
        net.ping_all(count=1, settle=2.0)
        assert net.switch("s1").packets_received > 0
        assert net.switch("s1").packets_forwarded > 0


class TestFailureInjection:
    def test_fail_link_stops_traffic_and_lowers_ports(self):
        net = Network(Topology.linear(2, hosts_per_switch=1),
                      miss_behaviour="drop")
        flooded(net)
        net.ping_all(count=1, settle=2.0)
        net.fail_link("s1", "s2")
        assert not net.link("s1", "s2").up
        assert not net.switch("s1").port(net.port_of("s1", "s2")).up
        h1, h2 = net.host("h1"), net.host("h2")
        session = h1.ping(h2.ip, count=1, timeout=1.0)
        net.run(3.0)
        assert session.lost == 1

    def test_recover_link(self):
        net = Network(Topology.linear(2, hosts_per_switch=1),
                      miss_behaviour="drop")
        flooded(net)
        net.fail_link("s1", "s2")
        net.recover_link("s1", "s2")
        assert net.link("s1", "s2").up
        assert net.ping_all(count=1, settle=2.0) == 1.0

    def test_fail_switch_cuts_all_adjacent_links(self):
        net = Network(Topology.star(2, hosts_per_leaf=1))
        net.fail_switch("hub")
        for neighbour in net.topology.neighbours("hub"):
            assert not net.link("hub", neighbour).up

    def test_host_link_failure(self):
        net = Network(Topology.single(2), miss_behaviour="drop")
        flooded(net)
        net.fail_link("h1", "s1")
        h2 = net.host("h2")
        session = h2.ping(net.host("h1").ip, count=1, timeout=1.0)
        net.run(3.0)
        assert session.lost == 1


class TestChannels:
    def test_make_channel_once(self):
        net = Network(Topology.single(1))
        net.make_channel("s1")
        with pytest.raises(TopologyError):
            net.make_channel("s1")
        assert net.channel("s1") is net.channels["s1"]

    def test_channel_for_unknown_switch(self):
        net = Network(Topology.single(1))
        with pytest.raises(KeyError):
            net.make_channel("sX")
        with pytest.raises(TopologyError):
            net.channel("sX")

    def test_determinism_across_runs(self):
        def run():
            net = Network(Topology.linear(3, hosts_per_switch=1,
                                          loss_rate=0.1), seed=11,
                          miss_behaviour="drop")
            flooded(net)
            ratio = net.ping_all(count=3, settle=3.0)
            return ratio, net.sim.events_processed

        assert run() == run()
