"""repro.obs: time-series engine, health/SLO plane, run diffing.

The heart of this file is the doctrine test: attaching the whole obs
plane — scraper, probes, SLO evaluation, annotations — to a seeded run
leaves every simulation observable bit-identical, across the same fuzz
corpus CI replays.  Around it: unit coverage for the sketch, series
rings, scraper alignment, SLO alert timing against scripted faults,
artifact round-trips, the regression-flagging diff, and a golden-file
test for the Prometheus exposition format.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import ZenPlatform
from repro.errors import SimulationError
from repro.faults import FaultSchedule
from repro.netem import Topology
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.telemetry.sketch import QuantileSketch

from repro.obs import (
    ConvergenceSLO,
    MetricsScraper,
    ObsPlane,
    RunArtifact,
    SLOEvaluator,
    Series,
    SeriesSLO,
    diff_runs,
    fault_windows,
    load_artifact,
    render_dashboard,
    render_diff,
    render_health,
    render_openmetrics,
    sparkline,
)
from repro.obs.scraper import Annotation

DATA = Path(__file__).parent / "data"


def _platform(seed=7, profile="proactive", size=4):
    return ZenPlatform(
        Topology.ring(size, hosts_per_switch=1),
        profile=profile, seed=seed, telemetry=Telemetry(profile=False),
    ).start()


def _warm(platform):
    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")


# ----------------------------------------------------------------------
# Quantile sketch
# ----------------------------------------------------------------------
class TestQuantileSketch:
    def test_quantiles_within_relative_error(self):
        sketch = QuantileSketch(alpha=0.01)
        values = [i / 1000.0 for i in range(1, 10001)]
        sketch.extend(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            true = values[int(q * len(values)) - 1]
            est = sketch.quantile(q)
            assert abs(est - true) / true < 0.03

    def test_merge_equals_union_stream(self):
        a, b, union = (QuantileSketch() for _ in range(3))
        for i in range(1, 500):
            a.observe(i * 0.001)
            union.observe(i * 0.001)
        for i in range(500, 1000):
            b.observe(i * 0.01)
            union.observe(i * 0.01)
        a.merge(b)
        assert a.count == union.count
        assert a.quantile(0.5) == union.quantile(0.5)
        assert a.quantile(0.99) == union.quantile(0.99)

    def test_delta_since_is_the_in_between_sketch(self):
        sketch = QuantileSketch()
        for i in range(100):
            sketch.observe(0.001 * (i + 1))
        earlier = sketch.copy()
        for i in range(100):
            sketch.observe(1.0 + i)
        delta = sketch.delta_since(earlier)
        assert delta.count == 100
        assert delta.quantile(0.01) >= 0.9  # only the late, large values

    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, 0.5, 2.0, 2.0, 9.0])
        loaded = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert loaded.count == sketch.count
        assert loaded.quantile(0.5) == sketch.quantile(0.5)
        assert loaded.min == 0.0 and loaded.max == 9.0

    def test_zero_and_negative_clamp(self):
        sketch = QuantileSketch()
        sketch.observe(-1.0)
        sketch.observe(0.0)
        sketch.observe(4.0)
        assert sketch.quantile(0.0) == 0.0
        assert sketch.count == 3

    def test_incompatible_alpha_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))


# ----------------------------------------------------------------------
# Series rings
# ----------------------------------------------------------------------
class TestSeries:
    def test_ring_evicts_into_rollups(self):
        series = Series("g", "gauge", capacity=8, rollup_factor=4)
        for i in range(20):
            series.sample(float(i), float(i * 10))
        assert len(series) == 8
        rollups = series.rollups()
        assert rollups and rollups[0].count == 4
        assert rollups[0].min == 0.0 and rollups[0].max == 30.0
        assert series.samples_taken == 20

    def test_counter_rate_and_delta(self):
        series = Series("c", "counter")
        for i in range(11):
            series.sample(i * 0.1, float(i * 5))
        assert series.delta(0.0, 1.0) == pytest.approx(50.0)
        assert series.rate(0.5, at=1.0) == pytest.approx(50.0)

    def test_windowed_quantile_merges_only_window_sketches(self):
        series = Series("h", "histogram")
        cum = QuantileSketch()
        for i in range(10):
            cum.observe(0.001 if i < 5 else 1.0)
            series.sample(float(i), float(cum.count),
                          cum_sketch=cum)
        early = series.quantile(0.5, t0=0.0, t1=4.0)
        late = series.quantile(0.5, t0=5.0, t1=9.0)
        assert early == pytest.approx(0.001, rel=0.05)
        assert late == pytest.approx(1.0, rel=0.05)

    def test_quantile_on_gauge_rejected(self):
        with pytest.raises(ValueError):
            Series("g", "gauge").quantile(0.5)

    def test_agg_window(self):
        series = Series("g", "gauge")
        for i in range(5):
            series.sample(float(i), float(i))
        assert series.agg("mean", 1.0, 3.0) == pytest.approx(2.0)
        assert series.agg("max") == 4.0
        assert series.agg("min", t0=10.0) is None


# ----------------------------------------------------------------------
# Kernel observers + scraper
# ----------------------------------------------------------------------
class TestScraper:
    def test_observer_cannot_schedule(self):
        sim = Simulator()

        def naughty():
            sim.schedule_at(sim.now + 1.0, lambda: None)

        sim.observe_every(0.5, naughty)
        sim.schedule_at(2.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_observer_ticks_do_not_count_as_events(self):
        sim = Simulator()
        ticks = []
        sim.observe_every(0.1, lambda: ticks.append(sim.now))
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=1.0)
        assert len(ticks) == 10
        assert sim.events_processed == 1

    def test_scrape_aligns_with_sim_clock(self):
        platform = _platform()
        plane = ObsPlane(platform, interval=0.25)
        platform.run(2.0)
        series = plane.scraper.get("sim_events_total")
        assert series is not None
        times = [t for t, _ in series.points()]
        assert times == pytest.approx(
            [platform.sim.now - 2.0 + 0.25 * (i + 1) for i in range(8)]
        )

    def test_probes_sampled_as_gauges(self):
        platform = _platform()
        plane = ObsPlane(platform, interval=0.1)
        platform.run(1.0)
        backlog = plane.scraper.match("obs_channel_backlog_seconds")
        assert len(backlog) == len(platform.net.switches)
        assert all(s.kind == "gauge" for s in backlog)

    def test_fault_windows_pair_and_annotations_align(self):
        platform = _platform()
        plane = ObsPlane(platform, interval=0.1)
        sched = FaultSchedule(platform.net)
        plane.watch_faults(sched)
        start = platform.sim.now + 0.5
        sched.link_flap(start, "s1", "s2", down_for=0.4, period=1.0,
                        count=2)
        platform.run(3.0)
        windows = plane.scraper.windows()
        assert [w.kind for w in windows] == ["link_down", "link_down"]
        assert windows[0].start == pytest.approx(start)
        assert windows[0].duration == pytest.approx(0.4)
        # Convergence annotations (resync/enter) landed on the timeline.
        kinds = {a.kind for a in plane.scraper.annotations}
        assert "link_down" in kinds and "link_up" in kinds

    def test_double_attach_rejected(self):
        platform = _platform()
        plane = ObsPlane(platform, interval=0.1)
        with pytest.raises(RuntimeError):
            plane.scraper.attach(platform.sim)


# ----------------------------------------------------------------------
# SLO plane
# ----------------------------------------------------------------------
class TestSLOs:
    def test_alert_fire_resolve_timing_around_link_cut(self):
        """A gauge SLO breached by a scripted link cut fires after
        ``for_s`` sustained and resolves after the repair."""
        platform = _platform()
        net = platform.net
        link = net.link("s1", "s2")
        scraper = MetricsScraper(platform.telemetry, interval=0.1)
        scraper.probe("link_s1_s2_down",
                      lambda: 0.0 if link.up else 1.0)
        scraper.attach(platform.sim)
        slo = SeriesSLO("link-up", "link_s1_s2_down", 0.0,
                        signal="last", for_s=0.2, resolve_s=0.0)
        evaluator = SLOEvaluator([slo], scraper).attach()

        base = platform.sim.now
        sched = FaultSchedule(net)
        sched.link_down(base + 1.0, "s1", "s2")
        sched.link_up(base + 2.0, "s1", "s2")
        platform.run(3.0)

        report = evaluator.finish(platform.sim.now)
        alerts = report.slo("link-up")["alerts"]
        assert len(alerts) == 1
        # Bad from t=base+1.0; first bad tick at the next scrape; fires
        # once 0.2s of badness has been observed.
        assert alerts[0]["fired_at"] == pytest.approx(base + 1.3,
                                                      abs=0.11)
        assert alerts[0]["resolved_at"] == pytest.approx(base + 2.1,
                                                         abs=0.11)
        assert not report.ok

    def test_burn_rate_budget_tolerates_sparse_badness(self):
        sim = Simulator()
        telemetry = Telemetry(profile=False)
        scraper = MetricsScraper(telemetry, interval=0.1)
        state = {"bad": False}
        scraper.probe("flaky", lambda: 1.0 if state["bad"] else 0.0)
        scraper.attach(sim)
        tight = SeriesSLO("tight", "flaky", 0.0, for_s=0.0)
        budgeted = SeriesSLO("budgeted", "flaky", 0.0, for_s=0.0,
                             budget=0.5, burn_window=2.0)
        evaluator = SLOEvaluator([tight, budgeted], scraper).attach()
        # One bad tick in twenty: 5% badness, well inside a 50% budget.
        sim.schedule_at(1.0, lambda: state.update(bad=True))
        sim.schedule_at(1.1, lambda: state.update(bad=False))
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=2.0)
        report = evaluator.finish(sim.now)
        assert report.slo("tight")["alerts"]
        assert not report.slo("budgeted")["alerts"]

    def test_convergence_slo_measures_fault_to_resync(self):
        platform = _platform()
        plane = ObsPlane(platform, interval=0.05)
        sched = FaultSchedule(platform.net)
        plane.watch_faults(sched)
        base = platform.sim.now
        sched.channel_flap(base + 0.5, "s1", down_for=0.4, period=2.0,
                           count=1)
        platform.run(3.0)
        report = plane.finish()
        doc = report.slo("convergence-after-fault")
        measured = doc["measurements"]
        assert len(measured) == 1
        assert measured[0]["label"] == "s1"
        # Down at +0.5 for 0.4s; resync completes shortly after.
        assert 0.4 < measured[0]["elapsed"] < 1.0
        assert not doc["alerts"]

    def test_convergence_slo_signal_is_oldest_open_age(self):
        scraper = MetricsScraper(Telemetry(profile=False))
        slo = ConvergenceSLO("conv", 1.0)
        scraper.annotations.append(Annotation(1.0, "channel_down", "s1"))
        scraper.annotations.append(Annotation(1.5, "switch_crash", "s2"))
        assert slo.measure(scraper, 2.0) == pytest.approx(1.0)
        scraper.annotations.append(Annotation(2.2, "resync_done", "s1"))
        # s1 discharged; s2 is now the oldest open obligation.
        assert slo.measure(scraper, 2.5) == pytest.approx(1.0)
        scraper.annotations.append(Annotation(3.0, "resync_done", "s2"))
        assert slo.measure(scraper, 3.5) == 0.0
        assert [(label, elapsed) for label, _, elapsed
                in slo.measurements] == [
            ("s1", pytest.approx(1.2)), ("s2", pytest.approx(1.5)),
        ]

    def test_duplicate_slo_names_rejected(self):
        scraper = MetricsScraper(Telemetry(profile=False))
        slos = [SeriesSLO("x", "a", 0.0), SeriesSLO("x", "b", 0.0)]
        with pytest.raises(ValueError):
            SLOEvaluator(slos, scraper)


# ----------------------------------------------------------------------
# Artifacts + diff
# ----------------------------------------------------------------------
def _run_artifact(seed=7, faults=False, down_for=0.5):
    platform = _platform(seed=seed)
    plane = ObsPlane(platform, interval=0.1)
    sched = FaultSchedule(platform.net)
    plane.watch_faults(sched)
    _warm(platform)
    if faults:
        sched.channel_flap(platform.sim.now + 0.5, "s1",
                           down_for=down_for, period=down_for + 1.5,
                           count=2)
    platform.run(6.0)
    plane.finish()
    return plane.artifact(seed=seed, faults=faults)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        artifact = _run_artifact(faults=True)
        path = tmp_path / "run.json"
        artifact.save(str(path))
        loaded = load_artifact(str(path))
        assert set(loaded.series) == set(artifact.series)
        assert loaded.horizon == artifact.horizon
        assert len(loaded.annotations) == len(artifact.annotations)
        assert loaded.health.ok == artifact.health.ok
        sid = "channel_messages_total{channel=\"s1\",direction=\"to_switch\"}"
        assert loaded.series[sid].points() == artifact.series[sid].points()
        assert [w.start for w in loaded.windows()] == \
            [w.start for w in artifact.windows()]

    def test_format_tag_checked(self):
        with pytest.raises(ValueError):
            RunArtifact.from_dict({"format": "something/else"})

    def test_same_seed_same_artifact(self):
        a = _run_artifact(faults=True)
        b = _run_artifact(faults=True)
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)


class TestDiff:
    def test_identical_runs_diff_empty(self):
        a = _run_artifact()
        b = _run_artifact()
        report = diff_runs(a, b)
        assert report.ok
        assert not report.changed
        assert not report.only_base and not report.only_cur

    def test_injected_regression_is_flagged(self):
        """A crash-churn run against a clean baseline must flag the
        health-plane regression (stale-switch alert fires)."""
        clean = _run_artifact(faults=False)
        churn = _run_artifact(faults=True, down_for=2.0)
        report = diff_runs(clean, churn)
        assert not report.ok
        flagged = {e.signal for e in report.regressions}
        assert any(s.startswith("slo:") for s in flagged), flagged
        # Volume growth under churn is reported but never fatal.
        assert all(not e.signal.startswith("channel_messages")
                   for e in report.regressions)
        text = render_diff(report)
        assert "REGRESSION" in text and "FAIL" in text

    def test_improvement_direction(self):
        clean = _run_artifact(faults=False)
        churn = _run_artifact(faults=True, down_for=2.0)
        report = diff_runs(churn, clean)  # churn as baseline
        assert report.ok
        assert report.improvements

    def test_synthetic_series_regression(self):
        def artifact(drops):
            series = Series("channel_dropped_total{channel=\"s1\"}",
                            "counter")
            for i in range(20):
                series.sample(i * 0.1, float(drops * i / 19))
            return RunArtifact({series.name: series}, [], horizon=2.0)

        report = diff_runs(artifact(0), artifact(40))
        assert [e.flag for e in report.entries] == ["REGRESSION"]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([0.0, 0.5, 1.0, None])
        assert len(line) == 4
        assert line[0] == "▁" and line[2] == "█" and line[3] == "·"

    def test_dashboard_has_fault_ruler_and_windows(self):
        artifact = _run_artifact(faults=True)
        text = render_dashboard(artifact, width=40,
                                select=["channel_messages"])
        assert "▓" in text
        assert "fault window: channel_down s1" in text
        assert "time axis:" in text

    def test_dashboard_respects_selection_cap(self):
        artifact = _run_artifact()
        text = render_dashboard(artifact, width=20, max_series=3)
        assert "more series" in text

    def test_health_render_lists_alerts(self):
        churn = _run_artifact(faults=True, down_for=2.0)
        text = render_health(churn.health)
        assert "ALERTS FIRED" in text
        assert "alert stale-switches" in text


class TestOpenMetricsGolden:
    def test_exposition_matches_golden_file(self):
        telemetry = Telemetry(profile=False, trace=False)
        reg = telemetry.metrics
        reg.counter("requests_total", "Requests served",
                    ("method",)).labels("get").inc(3)
        reg.gauge("temperature_celsius", "Current temperature").set(21.5)
        hist = reg.histogram("latency_seconds", "Request latency",
                             buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.002, 0.05, 0.2):
            hist.observe(v)
        got = render_openmetrics(reg)
        golden = (DATA / "openmetrics_golden.txt").read_text()
        assert got == golden

    def test_label_escaping(self):
        reg = Telemetry(profile=False, trace=False).metrics
        reg.counter("odd_total", "", ("path",)).labels('a"b\\c').inc()
        text = render_openmetrics(reg)
        assert r'path="a\"b\\c"' in text


# ----------------------------------------------------------------------
# The doctrine: obs never perturbs a seeded run
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_obs_on_vs_off_across_fuzz_corpus(self):
        """Every corpus seed runs bit-identically with the full obs
        plane attached (scraper + probes + SLOs + annotations) vs with
        no telemetry at all."""
        from repro.check import generate_scenario, run_scenario
        from repro.check.fuzzer import result_digest

        corpus = json.loads((DATA / "fuzz_corpus.json").read_text())
        for seed in corpus["seeds"]:
            scenario = generate_scenario(seed)
            plain = run_scenario(scenario)
            observed = run_scenario(scenario, obs=True)
            assert result_digest(plain) == result_digest(observed), (
                f"obs plane perturbed seed {seed}"
            )
            assert observed.obs is not None
            assert observed.obs.scraper.scrapes > 0

    def test_observer_fires_between_events_deterministically(self):
        """Two identical runs see identical scrape timelines."""
        def run():
            platform = _platform(seed=11)
            plane = ObsPlane(platform, interval=0.1)
            _warm(platform)
            platform.run(2.0)
            plane.finish()
            return json.dumps(plane.artifact().to_dict(),
                              sort_keys=True)

        assert run() == run()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestObsCLI:
    def test_report_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main(["obs", "report", "--seed", "3", "--duration", "2",
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "Health @" in text
        loaded = load_artifact(str(out))
        assert loaded.scrapes > 0

    def test_dashboard_from_artifact(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main(["obs", "report", "--seed", "3", "--duration", "2",
              "--faults", "link", "--out", str(out)])
        capsys.readouterr()
        rc = main(["obs", "dashboard", "--path", str(out),
                   "--series", "channel_messages", "--width", "30"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "time axis:" in text and "▓" in text

    def test_diff_exit_codes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        _run_artifact(faults=False).save(str(a))
        _run_artifact(faults=True, down_for=2.0).save(str(b))
        assert main(["obs", "diff", str(a), str(a)]) == 0
        assert main(["obs", "diff", str(a), str(b)]) == 1
        text = capsys.readouterr().out
        assert "FAIL" in text

    def test_openmetrics_format(self, capsys):
        rc = main(["obs", "report", "--seed", "3", "--duration", "1",
                   "--format", "openmetrics"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# TYPE sim_events_total counter" in text
        assert text.rstrip().endswith("# EOF")


# ----------------------------------------------------------------------
# Fault-window pairing (pure function)
# ----------------------------------------------------------------------
def test_fault_window_pairing_orphans_stay_open():
    anns = [
        Annotation(1.0, "link_down", "s1-s2"),
        Annotation(2.0, "link_up", "s1-s2"),
        Annotation(3.0, "channel_down", "s3"),
    ]
    windows = fault_windows(anns)
    assert len(windows) == 2
    assert windows[0].duration == pytest.approx(1.0)
    assert windows[1].end is None
