"""Codec tests: every header must survive an encode/decode roundtrip
byte-exactly, and malformed buffers must fail loudly."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.packet import (
    ARP,
    Ethernet,
    EtherType,
    ICMP,
    ICMPType,
    IPProto,
    IPv4,
    LLDP,
    LLDP_MULTICAST,
    MACAddress,
    Packet,
    Raw,
    TCP,
    TCPFlags,
    UDP,
    VLAN,
    internet_checksum,
)

MAC_A = "00:00:00:00:00:01"
MAC_B = "00:00:00:00:00:02"


def roundtrip(packet: Packet) -> Packet:
    return Packet.decode(packet.encode())


class TestEthernet:
    def test_roundtrip(self):
        pkt = roundtrip(Ethernet(dst=MAC_B, src=MAC_A, ethertype=0x1234)
                        / b"payload")
        eth = pkt[Ethernet]
        assert eth.dst == MAC_B
        assert eth.src == MAC_A
        assert eth.ethertype == 0x1234
        assert pkt.payload == b"payload"

    def test_header_is_14_bytes(self):
        assert len((Ethernet() / b"").encode()) == 14

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            Ethernet.decode(b"\x00" * 13)

    def test_ethertype_inferred_from_stack(self):
        pkt = Ethernet() / IPv4(src="1.2.3.4", dst="5.6.7.8")
        raw = pkt.encode()
        assert Packet.decode(raw)[Ethernet].ethertype == EtherType.IPV4


class TestVLAN:
    def test_tagged_frame_roundtrip(self):
        pkt = (Ethernet(dst=MAC_B, src=MAC_A)
               / VLAN(vid=42, pcp=5)
               / IPv4(src="1.1.1.1", dst="2.2.2.2")
               / b"x")
        out = roundtrip(pkt)
        assert out[VLAN].vid == 42
        assert out[VLAN].pcp == 5
        assert out[Ethernet].ethertype == EtherType.VLAN
        assert out[VLAN].ethertype == EtherType.IPV4
        assert IPv4 in out

    def test_vid_range_checked(self):
        with pytest.raises(DecodeError):
            VLAN(vid=4096)
        with pytest.raises(DecodeError):
            VLAN(vid=0, pcp=8)


class TestARP:
    def test_request_roundtrip(self):
        pkt = roundtrip(Ethernet() / ARP(
            opcode=ARP.REQUEST,
            sender_mac=MAC_A, sender_ip="10.0.0.1",
            target_ip="10.0.0.2",
        ))
        arp = pkt[ARP]
        assert arp.is_request and not arp.is_reply
        assert arp.sender_ip == "10.0.0.1"
        assert arp.target_ip == "10.0.0.2"

    def test_reply_roundtrip(self):
        pkt = roundtrip(Ethernet() / ARP(
            opcode=ARP.REPLY,
            sender_mac=MAC_B, sender_ip="10.0.0.2",
            target_mac=MAC_A, target_ip="10.0.0.1",
        ))
        assert pkt[ARP].is_reply
        assert pkt[ARP].sender_mac == MAC_B

    def test_non_ethernet_ipv4_variant_rejected(self):
        raw = (Ethernet() / ARP()).encode()
        # Corrupt the hardware type field (first 2 bytes after Ethernet).
        bad = raw[:14] + b"\x00\x02" + raw[16:]
        with pytest.raises(DecodeError):
            Packet.decode(bad)


class TestIPv4:
    def test_roundtrip_all_fields(self):
        pkt = roundtrip(Ethernet() / IPv4(
            src="1.2.3.4", dst="5.6.7.8", ttl=17, dscp=46, ecn=1,
            ident=0xBEEF,
        ) / b"data")
        ip = pkt[IPv4]
        assert ip.src == "1.2.3.4"
        assert ip.ttl == 17
        assert ip.dscp == 46
        assert ip.ecn == 1
        assert ip.ident == 0xBEEF

    def test_checksum_verified_on_decode(self):
        raw = bytearray((Ethernet() / IPv4(src="1.1.1.1", dst="2.2.2.2")
                         / b"x").encode())
        raw[14 + 8] ^= 0xFF  # corrupt the TTL byte
        with pytest.raises(DecodeError):
            Packet.decode(bytes(raw))

    def test_header_checksum_is_valid(self):
        raw = (Ethernet() / IPv4(src="1.1.1.1", dst="2.2.2.2")).encode()
        assert internet_checksum(raw[14:34]) == 0

    def test_total_length_tracks_payload(self):
        raw = (Ethernet() / IPv4() / (b"\xaa" * 10)).encode()
        total_length = int.from_bytes(raw[16:18], "big")
        assert total_length == 20 + 10

    def test_decrement_ttl(self):
        ip = IPv4(ttl=2)
        assert ip.decrement_ttl() and ip.ttl == 1
        assert not ip.decrement_ttl() and ip.ttl == 0

    def test_wrong_version_rejected(self):
        raw = bytearray((Ethernet() / IPv4()).encode())
        raw[14] = (6 << 4) | 5
        with pytest.raises(DecodeError):
            Packet.decode(bytes(raw))


class TestTransport:
    def test_udp_roundtrip(self):
        pkt = roundtrip(Ethernet() / IPv4(src="1.1.1.1", dst="2.2.2.2")
                        / UDP(src_port=1234, dst_port=53) / b"query")
        udp = pkt[UDP]
        assert (udp.src_port, udp.dst_port) == (1234, 53)
        assert pkt.payload == b"query"

    def test_udp_length_field(self):
        raw = (IPv4() / UDP(src_port=1, dst_port=2) / b"12345").encode()
        length = int.from_bytes(raw[20 + 4:20 + 6], "big")
        assert length == 8 + 5

    def test_udp_port_range_checked(self):
        with pytest.raises(DecodeError):
            UDP(src_port=70000)

    def test_tcp_roundtrip(self):
        pkt = roundtrip(Ethernet() / IPv4(src="1.1.1.1", dst="2.2.2.2")
                        / TCP(src_port=4000, dst_port=80, seq=1000,
                              ack=2000, flags=TCPFlags.SYN | TCPFlags.ACK,
                              window=1024) / b"")
        tcp = pkt[TCP]
        assert tcp.seq == 1000 and tcp.ack == 2000
        assert tcp.is_syn and tcp.is_ack and not tcp.is_fin
        assert tcp.window == 1024

    def test_tcp_flag_helpers(self):
        tcp = TCP(flags=TCPFlags.FIN | TCPFlags.ACK)
        assert tcp.has_flags(TCPFlags.FIN)
        assert tcp.has_flags(TCPFlags.FIN | TCPFlags.ACK)
        assert not tcp.has_flags(TCPFlags.SYN)

    def test_ip_proto_demux(self):
        udp_pkt = roundtrip(Ethernet() / IPv4() / UDP() / b"")
        tcp_pkt = roundtrip(Ethernet() / IPv4() / TCP() / b"")
        assert udp_pkt[IPv4].proto == IPProto.UDP
        assert tcp_pkt[IPv4].proto == IPProto.TCP


class TestICMP:
    def test_echo_roundtrip(self):
        pkt = roundtrip(Ethernet() / IPv4(src="1.1.1.1", dst="2.2.2.2")
                        / ICMP(ICMPType.ECHO_REQUEST, ident=7, seq=3)
                        / b"ping")
        icmp = pkt[ICMP]
        assert icmp.is_echo_request
        assert (icmp.ident, icmp.seq) == (7, 3)

    def test_checksum_covers_payload(self):
        raw = bytearray((Ethernet() / IPv4() / ICMP() / b"zz").encode())
        raw[-1] ^= 0xFF
        with pytest.raises(DecodeError):
            Packet.decode(bytes(raw))


class TestLLDP:
    def test_roundtrip(self):
        pkt = roundtrip(
            Ethernet(dst=LLDP_MULTICAST, src=MAC_A)
            / LLDP(chassis_id=99, port_id=3, ttl=12)
        )
        lldp = pkt[LLDP]
        assert (lldp.chassis_id, lldp.port_id, lldp.ttl) == (99, 3, 12)

    def test_missing_mandatory_tlv_rejected(self):
        # End TLV immediately: no chassis/port.
        with pytest.raises(DecodeError):
            LLDP.decode(b"\x00\x00")


class TestPacketContainer:
    def test_getitem_raises_on_missing(self):
        pkt = Ethernet() / b""
        with pytest.raises(KeyError):
            pkt[IPv4]

    def test_contains(self):
        pkt = Ethernet() / IPv4() / UDP() / b""
        assert IPv4 in pkt and TCP not in pkt

    def test_copy_is_independent(self):
        pkt = Ethernet(dst=MAC_B, src=MAC_A) / IPv4(src="1.1.1.1",
                                                    dst="2.2.2.2") / b"x"
        dup = pkt.copy()
        dup[IPv4].ttl = 1
        assert pkt[IPv4].ttl == 64

    def test_summary(self):
        pkt = Ethernet() / IPv4() / UDP() / b"abc"
        assert pkt.summary().startswith("Ethernet/IPv4/UDP")

    def test_unknown_ethertype_becomes_raw(self):
        pkt = Packet.decode((Ethernet(ethertype=0x9999) / b"tail").encode())
        assert pkt.headers[1].__class__ is Raw
        assert pkt.payload == b"tail"

    def test_packet_equality_by_bytes(self):
        a = Ethernet(dst=MAC_B) / IPv4(src="1.1.1.1", dst="2.2.2.2") / b"x"
        b = Ethernet(dst=MAC_B) / IPv4(src="1.1.1.1", dst="2.2.2.2") / b"x"
        assert a == b

    @given(
        src=st.integers(min_value=0, max_value=(1 << 48) - 1),
        dst=st.integers(min_value=0, max_value=(1 << 48) - 1),
        sip=st.integers(min_value=0, max_value=(1 << 32) - 1),
        dip=st.integers(min_value=0, max_value=(1 << 32) - 1),
        sport=st.integers(min_value=0, max_value=65535),
        dport=st.integers(min_value=0, max_value=65535),
        ttl=st.integers(min_value=1, max_value=255),
        dscp=st.integers(min_value=0, max_value=63),
        payload=st.binary(max_size=64),
    )
    def test_udp_stack_roundtrip_property(self, src, dst, sip, dip, sport,
                                          dport, ttl, dscp, payload):
        pkt = (
            Ethernet(dst=MACAddress(dst), src=MACAddress(src))
            / IPv4(src=sip, dst=dip, ttl=ttl, dscp=dscp)
            / UDP(src_port=sport, dst_port=dport)
            / payload
        )
        out = roundtrip(pkt)
        assert out == pkt
        assert out[UDP].dst_port == dport
        assert out.payload == payload

    @given(payload=st.binary(max_size=32),
           vid=st.integers(min_value=0, max_value=4095))
    def test_vlan_stack_roundtrip_property(self, payload, vid):
        pkt = (Ethernet(dst=MAC_B, src=MAC_A) / VLAN(vid=vid)
               / IPv4(src="1.1.1.1", dst="2.2.2.2") / payload)
        assert roundtrip(pkt) == pkt


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xFF") == internet_checksum(b"\xFF\x00")

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"hello checksum world"
        csum = internet_checksum(data)
        assert internet_checksum(data + csum.to_bytes(2, "big")) == 0
