"""ZenPlatform integration tests and cross-plane scenarios."""

import networkx as nx
import pytest

from repro.core import ZenPlatform
from repro.errors import ControllerError
from repro.graphutil import canonical_tree_edges
from repro.netem import Topology


class TestGraphUtil:
    def test_canonical_tree_spans_and_is_acyclic(self):
        g = nx.Graph()
        g.add_edges_from([(1, 2), (2, 3), (3, 4), (4, 1), (2, 4)])
        tree = canonical_tree_edges(g)
        assert len(tree) == 3  # n-1
        t = nx.Graph()
        t.add_edges_from(tuple(e) for e in tree)
        assert nx.is_tree(t)
        assert set(t.nodes) == set(g.nodes)

    def test_independent_of_insertion_order(self):
        edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
        a, b = nx.Graph(), nx.Graph()
        a.add_edges_from(edges)
        b.add_edges_from(reversed(edges))
        assert canonical_tree_edges(a) == canonical_tree_edges(b)

    def test_disconnected_components(self):
        g = nx.Graph()
        g.add_edges_from([(1, 2), (5, 6)])
        g.add_node(9)
        tree = canonical_tree_edges(g)
        assert tree == {frozenset((1, 2)), frozenset((5, 6))}

    def test_empty_graph(self):
        assert canonical_tree_edges(nx.Graph()) == set()


class TestPlatformAssembly:
    def test_profiles(self):
        for profile in ("reactive", "proactive", "bare"):
            platform = ZenPlatform(Topology.single(1), profile=profile)
            assert platform.profile == profile
        with pytest.raises(ControllerError):
            ZenPlatform(Topology.single(1), profile="quantum")

    def test_all_switches_connected_after_start(self):
        platform = ZenPlatform(Topology.fat_tree(4)).start()
        assert platform.controller.switch_count == 20
        assert platform.discovery.link_count == 64  # 32 links × 2 dirs

    def test_control_overhead_accounting(self):
        platform = ZenPlatform(Topology.linear(2, hosts_per_switch=1,
                                               bandwidth_bps=1e9)).start()
        platform.ping_all(count=1, settle=3.0)
        per_switch = platform.control_overhead()
        assert set(per_switch) == {"s1", "s2"}
        total_msgs = platform.total_control_messages()
        total_bytes = platform.total_control_bytes()
        assert total_msgs > 0
        assert total_bytes > total_msgs * 10  # every frame has a header

    def test_intents_profile_flag(self):
        platform = ZenPlatform(Topology.single(1), intents=True)
        assert platform.intents is not None
        platform2 = ZenPlatform(Topology.single(1))
        assert platform2.intents is None


class TestEndToEndScenarios:
    def test_fat_tree_any_to_any(self):
        platform = ZenPlatform(
            Topology.fat_tree(4, bandwidth_bps=1e9),
            probe_interval=0.5,
        ).start(warmup=2.0)
        # Sample pings across pods (all-pairs would be 240 sessions).
        h_a, h_b = platform.host("p0e0h0"), platform.host("p3e1h1")
        h_c, h_d = platform.host("p1e1h0"), platform.host("p2e0h1")
        s1 = h_a.ping(h_b.ip, count=2, interval=0.2)
        s2 = h_c.ping(h_d.ip, count=2, interval=0.2)
        platform.run(8.0)
        assert s1.received == 2
        assert s2.received == 2

    def test_reactive_and_proactive_agree_on_connectivity(self):
        for profile in ("reactive", "proactive"):
            platform = ZenPlatform(
                Topology.tree(depth=2, fanout=2, bandwidth_bps=1e9),
                profile=profile,
            ).start()
            assert platform.ping_all(count=1, settle=6.0) == 1.0

    def test_failure_recovery_end_to_end(self):
        platform = ZenPlatform(
            Topology.ring(5, hosts_per_switch=1, bandwidth_bps=1e9)
        ).start()
        assert platform.ping_all(count=1, settle=5.0) == 1.0
        platform.fail_link("s2", "s3")
        platform.run(2.0)
        assert platform.ping_all(count=1, settle=5.0) == 1.0
        platform.recover_link("s2", "s3")
        platform.run(3.0)
        assert platform.ping_all(count=1, settle=5.0) == 1.0

    def test_deterministic_replay(self):
        def run(seed):
            platform = ZenPlatform(
                Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
                seed=seed,
            ).start()
            ratio = platform.ping_all(count=2, settle=4.0)
            return (ratio, platform.sim.events_processed,
                    platform.total_control_messages())

        assert run(3) == run(3)

    def test_controller_latency_slows_reactive_setup(self):
        def first_rtt(latency):
            platform = ZenPlatform(
                Topology.linear(2, hosts_per_switch=1,
                                bandwidth_bps=1e9),
                profile="reactive",
                control_latency=latency,
            ).start()
            h1, h2 = platform.host("h1"), platform.host("h2")
            session = h1.ping(h2.ip, count=1)
            platform.run(8.0)
            assert session.received == 1
            return session.avg_rtt

        assert first_rtt(0.02) > first_rtt(0.0005) + 0.01
