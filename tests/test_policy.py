"""Policy algebra tests: compilation semantics and end-to-end install."""

import pytest

from repro.core import (
    ZenPlatform,
    compile_policy,
    drop,
    filter_,
    flood,
    fwd,
    ifte,
    install_policy,
    mod,
    punt,
)
from repro.dataplane import (
    FlowKey,
    Match,
    Output,
    PORT_CONTROLLER,
    SetIPDst,
)
from repro.errors import PolicyError
from repro.netem import Topology
from repro.packet import Ethernet, IPv4, UDP


def key(dst="10.0.0.2", dport=80, src="10.0.0.1"):
    pkt = (Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
           / IPv4(src=src, dst=dst)
           / UDP(src_port=1, dst_port=dport) / b"")
    return FlowKey.from_packet(pkt, in_port=1)


def evaluate(policy, flow_key):
    """First-match evaluation of a compiled policy against a key."""
    for match, actions in compile_policy(policy):
        if match.matches(flow_key):
            return actions
    return None  # fell off the rule list (should not happen)


class TestAtoms:
    def test_fwd(self):
        assert compile_policy(fwd(3)) == [(Match(), [Output(3)])]

    def test_drop(self):
        assert compile_policy(drop()) == [(Match(), [])]

    def test_punt(self):
        assert compile_policy(punt()) == [
            (Match(), [Output(PORT_CONTROLLER)])
        ]

    def test_bare_filter_drops_nonmatching(self):
        compile_policy(filter_(l4_dst=80))
        # Pass rules degenerate to drop at top level.
        assert evaluate(filter_(l4_dst=80), key(dport=80)) == []
        assert evaluate(filter_(l4_dst=80), key(dport=443)) == []

    def test_mod_rejects_unknown_field(self):
        with pytest.raises(PolicyError):
            mod(bogus=1)


class TestSequential:
    def test_filter_then_fwd(self):
        policy = filter_(l4_dst=80) >> fwd(2)
        assert evaluate(policy, key(dport=80)) == [Output(2)]
        assert evaluate(policy, key(dport=443)) == []

    def test_mod_then_fwd(self):
        policy = mod(ip_dst="9.9.9.9") >> fwd(2)
        actions = evaluate(policy, key())
        assert actions == [SetIPDst("9.9.9.9"), Output(2)]

    def test_filter_mod_fwd_chain(self):
        policy = (filter_(ip_dst="10.0.0.0/24")
                  >> mod(ip_dst="9.9.9.9")
                  >> fwd(7))
        assert evaluate(policy, key(dst="10.0.0.5")) == [
            SetIPDst("9.9.9.9"), Output(7)
        ]
        assert evaluate(policy, key(dst="10.1.0.5")) == []

    def test_write_satisfies_later_filter(self):
        # mod sets ip_dst, a later filter requires exactly that value:
        # the constraint is statically satisfied and removed.
        policy = (mod(ip_dst="9.9.9.9") >> filter_(ip_dst="9.9.9.9")
                  >> fwd(1))
        assert evaluate(policy, key(dst="1.2.3.4")) == [
            SetIPDst("9.9.9.9"), Output(1)
        ]

    def test_write_contradicts_later_filter(self):
        # mod sets ip_dst to X; a later filter demands Y: nothing passes.
        policy = (mod(ip_dst="9.9.9.9") >> filter_(ip_dst="8.8.8.8")
                  >> fwd(1))
        assert evaluate(policy, key()) == []

    def test_terminal_on_left_rejected(self):
        with pytest.raises(PolicyError):
            fwd(1) >> fwd(2)

    def test_conflicting_filters_compile_to_drop(self):
        policy = filter_(l4_dst=80) >> filter_(l4_dst=443) >> fwd(1)
        assert evaluate(policy, key(dport=80)) == []
        assert evaluate(policy, key(dport=443)) == []


class TestParallel:
    def test_disjoint_union(self):
        policy = ((filter_(l4_dst=80) >> fwd(1))
                  | (filter_(l4_dst=443) >> fwd(2)))
        assert evaluate(policy, key(dport=80)) == [Output(1)]
        assert evaluate(policy, key(dport=443)) == [Output(2)]
        assert evaluate(policy, key(dport=22)) == []

    def test_overlap_applies_both(self):
        policy = ((filter_(ip_dst="10.0.0.2") >> fwd(1))
                  | (filter_(l4_dst=80) >> fwd(2)))
        # A packet matching both predicates goes both ways (multicast).
        actions = evaluate(policy, key(dst="10.0.0.2", dport=80))
        assert actions == [Output(1), Output(2)]
        assert evaluate(policy, key(dst="10.0.0.2", dport=443)) == [
            Output(1)
        ]

    def test_conflicting_writes_rejected(self):
        policy = ((mod(ip_dst="1.1.1.1") >> fwd(1))
                  | (mod(ip_dst="2.2.2.2") >> fwd(2)))
        with pytest.raises(PolicyError):
            compile_policy(policy)


class TestIfThenElse:
    def test_branching(self):
        policy = ifte({"ip_dst": "10.0.0.0/24"}, fwd(1), fwd(2))
        assert evaluate(policy, key(dst="10.0.0.9")) == [Output(1)]
        assert evaluate(policy, key(dst="10.1.0.9")) == [Output(2)]

    def test_nested(self):
        policy = ifte(
            {"ip_dst": "10.0.0.0/24"},
            ifte({"l4_dst": 80}, fwd(1), drop()),
            flood(),
        )
        assert evaluate(policy, key(dst="10.0.0.9", dport=80)) == [
            Output(1)
        ]
        assert evaluate(policy, key(dst="10.0.0.9", dport=443)) == []
        out = evaluate(policy, key(dst="10.9.0.9"))
        assert len(out) == 1  # the flood action

    def test_with_match_object(self):
        policy = ifte(Match(l4_dst=80), fwd(1), fwd(2))
        assert evaluate(policy, key(dport=80)) == [Output(1)]


class TestCompilation:
    def test_shadowed_rules_pruned(self):
        # else-branch wildcard shadows anything after it.
        policy = ifte({"l4_dst": 80}, fwd(1), fwd(2)) | fwd(3)
        compiled = compile_policy(policy)
        # No rule may be a strict duplicate of an earlier match.
        seen = []
        for match, _ in compiled:
            assert not any(match == s for s in seen)
            seen.append(match)

    def test_first_match_semantics_preserved(self):
        policy = ifte({"ip_dst": "10.0.0.0/8"},
                      ifte({"ip_dst": "10.0.0.2"}, fwd(1), fwd(2)),
                      drop())
        assert evaluate(policy, key(dst="10.0.0.2")) == [Output(1)]
        assert evaluate(policy, key(dst="10.0.0.3")) == [Output(2)]
        assert evaluate(policy, key(dst="11.0.0.1")) == []


class TestInstallEndToEnd:
    def test_policy_drives_real_network(self):
        platform = ZenPlatform(
            Topology.single(3, bandwidth_bps=1e9), profile="bare",
        ).start()
        net = platform.net
        h1, h2, h3 = (net.host(n) for n in ("h1", "h2", "h3"))
        for a in (h1, h2, h3):
            for b in (h1, h2, h3):
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        s1 = platform.controller.switch(net.switch("s1").dpid)
        p1, p2, p3 = (net.port_of("s1", h) for h in ("h1", "h2", "h3"))
        policy = (
            (filter_(eth_dst=str(h1.mac)) >> fwd(p1))
            | (filter_(eth_dst=str(h2.mac)) >> fwd(p2))
            | (filter_(eth_dst=str(h3.mac)) >> fwd(p3))
        )
        count = install_policy(s1, policy, base_priority=1000)
        assert count >= 3
        platform.run(0.5)
        session = h1.ping(h2.ip, count=2, interval=0.1)
        platform.run(3.0)
        assert session.received == 2

    def test_rule_budget_checked(self):
        platform = ZenPlatform(Topology.single(1), profile="bare").start()
        s1 = platform.controller.switch(1)
        with pytest.raises(PolicyError):
            install_policy(s1, fwd(1), base_priority=0)
