"""Deep property-based tests across layer boundaries.

Three families:

* codec totality — randomly generated matches, action lists, and flow
  mods survive the ZOF wire format unchanged;
* match algebra — intersect/subset/overlap behave like the set
  operations they model, on randomly generated patterns and keys;
* policy compiler soundness — for random (mod-free) policy ASTs, the
  compiled first-match rule list produces exactly the output-port
  multiset of a direct denotational interpreter, on random packets.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.policy import (
    Policy,
    compile_policy,
    drop,
    filter_,
    fwd,
    ifte,
)
from repro.core import policy as policy_mod
from repro.dataplane import FlowKey, Match, Output
from repro.dataplane.actions import (
    DecTTL,
    Group,
    Meter,
    PopVLAN,
    PushVLAN,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
)
from repro.packet import Ethernet, IPv4, IPv4Address, MACAddress, UDP
from repro.southbound import (
    FlowMod,
    decode_actions,
    decode_match,
    decode_message,
    encode_actions,
    encode_match,
    encode_message,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MACAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
ports = st.integers(min_value=0, max_value=65535)


@st.composite
def matches(draw):
    fields = {}
    if draw(st.booleans()):
        fields["in_port"] = draw(st.integers(min_value=1, max_value=64))
    if draw(st.booleans()):
        fields["eth_src"] = draw(macs)
    if draw(st.booleans()):
        fields["eth_dst"] = draw(macs)
    if draw(st.booleans()):
        fields["eth_type"] = draw(st.sampled_from([0x0800, 0x0806,
                                                   0x88CC]))
    if draw(st.booleans()):
        fields["vlan_vid"] = draw(st.integers(min_value=-1,
                                              max_value=4095))
    for name in ("ip_src", "ip_dst"):
        if draw(st.booleans()):
            if draw(st.booleans()):
                prefix = draw(st.integers(min_value=0, max_value=31))
                fields[name] = f"{draw(ips)}/{prefix}"
            else:
                fields[name] = draw(ips)
    if draw(st.booleans()):
        fields["ip_proto"] = draw(st.integers(min_value=0, max_value=255))
    if draw(st.booleans()):
        fields["ip_dscp"] = draw(st.integers(min_value=0, max_value=63))
    if draw(st.booleans()):
        fields["l4_src"] = draw(ports)
    if draw(st.booleans()):
        fields["l4_dst"] = draw(ports)
    return Match(**fields)


actions_strategy = st.lists(st.one_of(
    st.builds(Output, st.integers(min_value=1, max_value=1000)),
    st.builds(SetEthSrc, macs),
    st.builds(SetEthDst, macs),
    st.builds(SetIPSrc, ips),
    st.builds(SetIPDst, ips),
    st.builds(SetL4Src, ports),
    st.builds(SetL4Dst, ports),
    st.builds(SetDSCP, st.integers(min_value=0, max_value=63)),
    st.builds(PushVLAN, st.integers(min_value=0, max_value=4095),
              st.integers(min_value=0, max_value=7)),
    st.builds(PopVLAN),
    st.builds(SetVLAN, st.integers(min_value=0, max_value=4095)),
    st.builds(DecTTL),
    st.builds(Group, st.integers(min_value=0, max_value=1 << 31)),
    st.builds(Meter, st.integers(min_value=0, max_value=1 << 31)),
), max_size=8)


class TestCodecTotality:
    @given(match=matches())
    def test_match_roundtrip(self, match):
        out, used = decode_match(encode_match(match))
        assert out == match

    @given(actions=actions_strategy)
    def test_actions_roundtrip(self, actions):
        out, used = decode_actions(encode_actions(actions))
        assert out == actions

    @given(match=matches(), actions=actions_strategy,
           priority=ports,
           idle=st.floats(min_value=0, max_value=1e6),
           hard=st.floats(min_value=0, max_value=1e6),
           cookie=st.integers(min_value=0, max_value=(1 << 64) - 1),
           goto=st.one_of(st.none(),
                          st.integers(min_value=0, max_value=254)),
           flags=st.integers(min_value=0, max_value=255))
    def test_flowmod_roundtrip(self, match, actions, priority, idle,
                               hard, cookie, goto, flags):
        msg = FlowMod(match=match, actions=actions, priority=priority,
                      idle_timeout=idle, hard_timeout=hard,
                      cookie=cookie, goto_table=goto, flags=flags)
        out = decode_message(encode_message(msg))
        assert out == msg


@st.composite
def keys(draw):
    pkt = (
        Ethernet(dst=draw(macs), src=draw(macs))
        / IPv4(src=draw(ips), dst=draw(ips),
               dscp=draw(st.integers(min_value=0, max_value=63)))
        / UDP(src_port=draw(ports), dst_port=draw(ports))
        / b""
    )
    return FlowKey.from_packet(
        pkt, in_port=draw(st.integers(min_value=1, max_value=64)))


class TestMatchAlgebra:
    @given(a=matches(), b=matches(), key=keys())
    def test_intersection_is_conjunction(self, a, b, key):
        both = a.intersect(b)
        if both is not None and both.matches(key):
            assert a.matches(key) and b.matches(key)
        if a.matches(key) and b.matches(key):
            assert both is not None
            assert both.matches(key)

    @given(a=matches(), b=matches(), key=keys())
    def test_subset_implies_implication(self, a, b, key):
        if a.is_subset_of(b) and a.matches(key):
            assert b.matches(key)

    @given(a=matches(), b=matches())
    def test_nonoverlap_means_empty_intersection(self, a, b):
        if not a.overlaps(b):
            assert a.intersect(b) is None

    @given(m=matches())
    def test_wildcard_is_identity_for_intersect(self, m):
        assert m.intersect(Match()) == m
        assert Match().intersect(m) == m

    # -- the laws the repro.check reachability engine leans on ---------
    @given(a=matches(), b=matches(), key=keys())
    def test_intersect_matches_key_iff_both_match(self, a, b, key):
        # Full biconditional: the intersection's matched set is exactly
        # the conjunction of the operands' matched sets (and a None
        # intersection means that conjunction is empty).
        both = a.intersect(b)
        lhs = both is not None and both.matches(key)
        rhs = a.matches(key) and b.matches(key)
        assert lhs == rhs

    @given(a=matches(), b=matches())
    def test_overlaps_iff_intersection_nonempty(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)
        assert a.overlaps(b) == b.overlaps(a)

    @given(a=matches(), b=matches())
    def test_intersection_is_a_lower_bound(self, a, b):
        both = a.intersect(b)
        if both is not None:
            assert both.is_subset_of(a)
            assert both.is_subset_of(b)

    @given(a=matches(), b=matches(), c=matches(), key=keys())
    def test_subset_is_a_preorder(self, a, b, c, key):
        assert a.is_subset_of(a)
        if a.is_subset_of(b) and b.is_subset_of(c):
            assert a.is_subset_of(c)
            if a.matches(key):
                assert c.matches(key)


# ----------------------------------------------------------------------
# Policy compiler soundness
# ----------------------------------------------------------------------
#: A tiny field universe so random policies and keys actually interact.
_PREDICATES = [
    {"l4_dst": 80},
    {"l4_dst": 443},
    {"in_port": 1},
    {"ip_dst": "10.0.0.0/8"},
    {"ip_dst": "10.1.0.0/16"},
    {"ip_src": "10.0.0.1"},
]


@st.composite
def policies(draw, depth=3) -> Policy:
    if depth == 0:
        return draw(st.sampled_from([
            fwd(1), fwd(2), fwd(3), drop(),
        ]))
    kind = draw(st.sampled_from(["leaf", "seq", "par", "ifte"]))
    if kind == "leaf":
        return draw(policies(depth=0))
    if kind == "seq":
        predicate = draw(st.sampled_from(_PREDICATES))
        return filter_(**predicate) >> draw(policies(depth=depth - 1))
    if kind == "par":
        return (draw(policies(depth=depth - 1))
                | draw(policies(depth=depth - 1)))
    predicate = draw(st.sampled_from(_PREDICATES))
    return ifte(predicate,
                draw(policies(depth=depth - 1)),
                draw(policies(depth=depth - 1)))


@st.composite
def universe_keys(draw):
    pkt = (
        Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01")
        / IPv4(src=draw(st.sampled_from(["10.0.0.1", "10.9.9.9"])),
               dst=draw(st.sampled_from(
                   ["10.0.0.2", "10.1.2.3", "192.168.0.1"])))
        / UDP(src_port=1000,
              dst_port=draw(st.sampled_from([80, 443, 8080])))
        / b""
    )
    return FlowKey.from_packet(
        pkt, in_port=draw(st.sampled_from([1, 2])))


def denote(policy: Policy, key: FlowKey) -> Counter:
    """Reference semantics: the multiset of output ports."""
    if isinstance(policy, policy_mod.Terminal):
        return Counter(a.port for a in policy.outputs)
    if isinstance(policy, policy_mod.Filter):
        # A bare filter forwards nothing at top level.
        return Counter()
    if isinstance(policy, policy_mod.Seq):
        left = policy.left
        assert isinstance(left, policy_mod.Filter), (
            "mod-free random policies only put filters on the left"
        )
        if left.match.matches(key):
            return denote(policy.right, key)
        return Counter()
    if isinstance(policy, policy_mod.Par):
        return denote(policy.left, key) + denote(policy.right, key)
    if isinstance(policy, policy_mod.IfThenElse):
        if policy.predicate.matches(key):
            return denote(policy.then_policy, key)
        return denote(policy.else_policy, key)
    raise AssertionError(f"unhandled policy node {policy!r}")


def run_compiled(policy: Policy, key: FlowKey) -> Counter:
    for match, actions in compile_policy(policy):
        if match.matches(key):
            return Counter(a.port for a in actions
                           if isinstance(a, Output))
    return Counter()


class TestPolicyCompilerSoundness:
    @settings(max_examples=300, deadline=None)
    @given(policy=policies(), key=universe_keys())
    def test_compiled_rules_match_denotation(self, policy, key):
        assert run_compiled(policy, key) == denote(policy, key)

    @settings(max_examples=100, deadline=None)
    @given(policy=policies())
    def test_compiled_list_always_covers_every_packet(self, policy):
        """Some rule matches every key in the universe (no fall-off)."""
        compile_policy(policy)
        probe = (Ethernet(dst="00:00:00:00:00:02",
                          src="00:00:00:00:00:01")
                 / IPv4(src="10.9.9.9", dst="192.168.0.1")
                 / UDP(src_port=1000, dst_port=8080) / b"")
        key = FlowKey.from_packet(probe, in_port=2)
        # Coverage isn't guaranteed by the algebra (a bare fwd covers
        # all, a filter chain may not) — but evaluation must never
        # crash and must agree with denotation even off the rule list.
        assert run_compiled(policy, key) == denote(policy, key)


class TestDecoderRobustness:
    """Hostile input never escapes as anything but ProtocolError."""

    @given(data=st.binary(max_size=120))
    def test_random_bytes_fail_cleanly(self, data):
        from repro.errors import ProtocolError

        try:
            decode_message(data)
        except ProtocolError:
            pass  # the only acceptable failure mode

    @given(msg_type=st.integers(min_value=0, max_value=255),
           body=st.binary(max_size=60),
           xid=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_valid_frame_bad_body_fails_cleanly(self, msg_type, body,
                                                xid):
        import struct

        from repro.errors import ProtocolError

        frame = struct.pack("!BBII", 1, msg_type, 10 + len(body),
                            xid) + body
        try:
            decode_message(frame)
        except ProtocolError:
            pass

    @given(match=matches(), actions=actions_strategy,
           cut=st.integers(min_value=0, max_value=30))
    def test_truncated_flowmod_fails_cleanly(self, match, actions, cut):
        from repro.errors import ProtocolError

        wire = encode_message(FlowMod(match=match, actions=actions))
        truncated = wire[:max(len(wire) - cut, 0)]
        if not truncated:
            return
        # Patch the length field so framing passes and body parsing is
        # what gets exercised.
        import struct

        patched = (truncated[:2]
                   + struct.pack("!I", len(truncated))
                   + truncated[6:])
        try:
            decode_message(patched)
        except ProtocolError:
            pass
