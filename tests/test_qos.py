"""Strict-priority queueing (QoS) tests on banded links."""

import pytest

from repro.analysis import mean
from repro.errors import TopologyError
from repro.netem import Attachment, Link, Network, Topology
from repro.netem.link import dscp_classifier
from repro.packet import Ethernet, IPv4, Packet, UDP
from repro.sim import Simulator

MAC_A, MAC_B = "00:00:00:00:00:01", "00:00:00:00:00:02"


def frame(dscp=0, size=1000, dport=9):
    pad = b"\x00" * (size - 14 - 20 - 8)
    return (Ethernet(dst=MAC_B, src=MAC_A)
            / IPv4(src="10.0.0.1", dst="10.0.0.2", dscp=dscp)
            / UDP(src_port=1, dst_port=dport) / pad)


def banded_link(sim, **kw):
    arrivals = []
    a = Attachment("a", 1, lambda pkt: None)
    b = Attachment("b", 1, lambda pkt: arrivals.append((sim.now, pkt)))
    link = Link(sim, a, b, priority_bands=2, **kw)
    return link, arrivals


class TestClassifier:
    def test_default_dscp_split(self):
        assert dscp_classifier(frame(dscp=46)) == 0  # EF: high
        assert dscp_classifier(frame(dscp=0)) == 1   # BE: low
        assert dscp_classifier(
            Packet([Ethernet(dst=MAC_B, src=MAC_A)])) == 1  # no IP

    def test_bad_band_count_rejected(self):
        sim = Simulator()
        a = Attachment("a", 1, lambda p: None)
        b = Attachment("b", 1, lambda p: None)
        with pytest.raises(TopologyError):
            Link(sim, a, b, priority_bands=0)


class TestStrictPriority:
    def test_high_band_jumps_the_queue(self):
        sim = Simulator()
        # 1000 B at 1 Mb/s = 8 ms per frame.
        link, arrivals = banded_link(sim, bandwidth_bps=1e6, delay=0.0)
        # Queue 5 best-effort frames, then one EF frame.
        for _ in range(5):
            link.send_from("a", frame(dscp=0))
        link.send_from("a", frame(dscp=46))
        sim.run_until_idle()
        assert len(arrivals) == 6
        # EF transmits right after the in-progress BE frame: slot 2.
        order = [pkt[IPv4].dscp for _, pkt in arrivals]
        assert order[1] == 46
        ef_time = arrivals[1][0]
        assert ef_time == pytest.approx(0.016)  # 2 x 8 ms

    def test_fifo_within_a_band(self):
        sim = Simulator()
        link, arrivals = banded_link(sim, bandwidth_bps=1e6, delay=0.0)
        for dport in (100, 101, 102):
            link.send_from("a", frame(dscp=0, dport=dport))
        sim.run_until_idle()
        assert [pkt[UDP].dst_port for _, pkt in arrivals] == [100, 101,
                                                              102]

    def test_low_band_starved_under_full_high_load(self):
        sim = Simulator()
        link, arrivals = banded_link(sim, bandwidth_bps=1e6, delay=0.0,
                                     queue_capacity=1000)
        # Offer 1 Mb/s of EF (exactly line rate) plus BE on the side.
        for i in range(100):
            sim.schedule(i * 0.008, link.send_from, "a", frame(dscp=46))
        sim.schedule(0.001, link.send_from, "a", frame(dscp=0))
        sim.run(until=0.8)
        dscps = [pkt[IPv4].dscp for _, pkt in arrivals]
        assert 0 not in dscps  # BE never got a slot while EF persisted
        sim.run_until_idle()
        dscps = [pkt[IPv4].dscp for _, pkt in arrivals]
        assert dscps.count(0) == 1  # delivered only after EF drained

    def test_per_band_drop_accounting(self):
        sim = Simulator()
        link, arrivals = banded_link(sim, bandwidth_bps=1e6, delay=0.0,
                                     queue_capacity=4)  # 2 per band
        for _ in range(6):
            link.send_from("a", frame(dscp=0))
        sim.run_until_idle()
        ab, _ = link.direction_stats()
        assert ab["band_dropped"][1] > 0
        assert ab["band_dropped"][0] == 0
        assert ab["band_tx_packets"][1] == len(arrivals)

    def test_loss_applies_to_banded_links(self):
        sim = Simulator(seed=5)
        link, arrivals = banded_link(sim, bandwidth_bps=10e6,
                                     delay=0.0, loss_rate=0.5)
        for _ in range(100):
            link.send_from("a", frame(dscp=0))
        sim.run_until_idle()
        assert 20 < len(arrivals) < 80


class TestQosEndToEnd:
    def test_ef_latency_protected_through_congestion(self):
        """An EF ping crosses a congested bottleneck almost unharmed
        when the link has priority bands; without them it queues."""

        def ef_latency(priority_bands):
            topo = Topology()
            topo.add_switch("s1")
            topo.add_switch("s2")
            topo.add_link("s1", "s2", bandwidth_bps=10e6,
                          queue_capacity=100,
                          priority_bands=priority_bands)
            for name, sw in (("src", "s1"), ("dst", "s2"),
                             ("bulk_src", "s1"), ("bulk_dst", "s2")):
                topo.add_link(topo.add_host(name), sw,
                              bandwidth_bps=100e6)
            net = Network(topo, miss_behaviour="drop")
            from repro.dataplane import (FlowEntry, Match, Output,
                                         PORT_FLOOD)

            for name in net.switches:
                net.switch(name).install_flow(
                    FlowEntry(Match(), [Output(PORT_FLOOD)],
                              priority=0))
            hosts = list(net.hosts.values())
            for a in hosts:
                for b in hosts:
                    if a is not b:
                        a.add_static_arp(b.ip, b.mac)
            # Saturate the bottleneck with best-effort bulk.
            from repro.netem import CBRStream, FlowSink

            FlowSink(net.host("bulk_dst"), 9000)
            CBRStream(net.host("bulk_src"), net.host("bulk_dst").ip,
                      rate_bps=12e6, packet_size=1000, duration=6.0)
            net.run(1.0)
            # EF probes: ICMP marked with DSCP 46 via a raw frame.
            src, dst = net.host("src"), net.host("dst")
            rtts = []
            import repro.packet as pkt_mod

            send_times = {}

            def on_reply(packet):
                icmp = packet.get(pkt_mod.ICMP)
                if icmp is not None and icmp.is_echo_reply:
                    rtts.append(net.sim.now - send_times[icmp.seq])

            src.on_receive = on_reply
            for seq in range(5):
                probe = (pkt_mod.Ethernet(dst=dst.mac, src=src.mac)
                         / pkt_mod.IPv4(src=src.ip, dst=dst.ip,
                                        dscp=46)
                         / pkt_mod.ICMP(pkt_mod.ICMPType.ECHO_REQUEST,
                                        ident=1, seq=seq) / b"ef")
                send_times[seq] = net.sim.now + 0.2 * seq
                net.sim.schedule(0.2 * seq, src.send_frame, probe)
            net.run(4.0)
            assert rtts, f"no EF replies (bands={priority_bands})"
            return mean(rtts)

        protected = ef_latency(priority_bands=2)
        unprotected = ef_latency(priority_bands=1)
        # The reply direction is uncongested either way; the request
        # direction queues behind ~100 bulk packets without priority.
        assert protected < unprotected / 5
        assert protected < 0.005
