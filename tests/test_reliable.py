"""Go-back-N reliable transport tests, including loss recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.errors import TopologyError
from repro.netem import Network, Topology
from repro.netem.reliable import ReliableReceiver, ReliableSender


def build_net(loss_rate=0.0, seed=0):
    net = Network(Topology.single(2, bandwidth_bps=10e6,
                                  loss_rate=loss_rate),
                  miss_behaviour="drop", seed=seed)
    net.switch("s1").install_flow(
        FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0))
    h1, h2 = net.host("h1"), net.host("h2")
    h1.add_static_arp(h2.ip, h2.mac)
    h2.add_static_arp(h1.ip, h1.mac)
    return net, h1, h2


class TestLosslessTransfer:
    def test_data_arrives_intact(self):
        net, h1, h2 = build_net()
        done = {}
        ReliableReceiver(h2, 7000,
                         on_complete=lambda x, d: done.update({x: d}))
        payload = bytes(range(256)) * 40  # 10240 B, several segments
        sender = ReliableSender(h1, h2.ip, 7000, payload, mss=1000)
        net.run(5.0)
        assert sender.complete
        assert done[sender.transfer_id] == payload
        assert sender.retransmissions == 0

    def test_single_segment_transfer(self):
        net, h1, h2 = build_net()
        done = {}
        ReliableReceiver(h2, 7000,
                         on_complete=lambda x, d: done.update({x: d}))
        sender = ReliableSender(h1, h2.ip, 7000, b"tiny")
        net.run(2.0)
        assert sender.complete
        assert done[sender.transfer_id] == b"tiny"

    def test_concurrent_transfers_do_not_mix(self):
        net, h1, h2 = build_net()
        done = {}
        ReliableReceiver(h2, 7000,
                         on_complete=lambda x, d: done.update({x: d}))
        a = ReliableSender(h1, h2.ip, 7000, b"A" * 5000, mss=500)
        b = ReliableSender(h1, h2.ip, 7000, b"B" * 5000, mss=500)
        net.run(5.0)
        assert a.complete and b.complete
        assert done[a.transfer_id] == b"A" * 5000
        assert done[b.transfer_id] == b"B" * 5000

    def test_transfer_metrics(self):
        net, h1, h2 = build_net()
        ReliableReceiver(h2, 7000)
        sender = ReliableSender(h1, h2.ip, 7000, b"z" * 20000)
        net.run(5.0)
        assert sender.complete
        assert sender.transfer_time > 0
        assert sender.goodput_bps > 0

    def test_done_signal(self):
        net, h1, h2 = build_net()
        ReliableReceiver(h2, 7000)
        sender = ReliableSender(h1, h2.ip, 7000, b"x" * 3000)
        finished = []

        def waiter():
            result = yield sender.done.wait()
            finished.append(result.complete)

        net.sim.spawn(waiter())
        net.run(5.0)
        assert finished == [True]

    def test_validation(self):
        net, h1, h2 = build_net()
        with pytest.raises(TopologyError):
            ReliableSender(h1, h2.ip, 7000, b"")
        with pytest.raises(TopologyError):
            ReliableSender(h1, h2.ip, 7000, b"x", window=0)


class TestLossRecovery:
    def test_transfer_completes_despite_loss(self):
        net, h1, h2 = build_net(loss_rate=0.2, seed=3)
        done = {}
        ReliableReceiver(h2, 7000,
                         on_complete=lambda x, d: done.update({x: d}))
        payload = b"\x5a" * 30000
        sender = ReliableSender(h1, h2.ip, 7000, payload,
                                timeout=0.1)
        net.run(60.0)
        assert sender.complete, sender
        assert done[sender.transfer_id] == payload
        assert sender.retransmissions > 0

    def test_loss_costs_time(self):
        def transfer_time(loss, seed=5):
            net, h1, h2 = build_net(loss_rate=loss, seed=seed)
            ReliableReceiver(h2, 7000)
            sender = ReliableSender(h1, h2.ip, 7000, b"q" * 30000,
                                    timeout=0.1)
            net.run(120.0)
            assert sender.complete
            return sender.transfer_time

        assert transfer_time(0.3) > 2 * transfer_time(0.0)

    def test_gives_up_when_path_is_dead(self):
        net, h1, h2 = build_net()
        ReliableReceiver(h2, 7000)
        sender = ReliableSender(h1, h2.ip, 7000, b"x" * 5000,
                                timeout=0.05, max_retries=5)
        net.fail_link("h2", "s1")
        net.run(10.0)
        assert sender.failed
        assert not sender.complete

    def test_out_of_order_segments_discarded_and_reacked(self):
        net, h1, h2 = build_net(loss_rate=0.3, seed=11)
        done = {}
        receiver = ReliableReceiver(
            h2, 7000, on_complete=lambda x, d: done.update({x: d}))
        sender = ReliableSender(h1, h2.ip, 7000, b"k" * 20000,
                                window=8, timeout=0.1)
        net.run(60.0)
        assert sender.complete
        # Go-back-N discards everything after a gap; with 30% loss and
        # window 8 some discards must have happened.
        assert receiver.segments_discarded > 0
        # But the delivered stream is exactly the data, no duplication.
        assert done[sender.transfer_id] == b"k" * 20000

    @settings(max_examples=15, deadline=None)
    @given(loss=st.sampled_from([0.0, 0.1, 0.25]),
           size=st.integers(min_value=1, max_value=8000),
           window=st.integers(min_value=1, max_value=16),
           seed=st.integers(min_value=0, max_value=100))
    def test_delivery_property(self, loss, size, window, seed):
        """Whatever the loss rate, window, and size: delivered bytes
        equal sent bytes, exactly once, in order."""
        net, h1, h2 = build_net(loss_rate=loss, seed=seed)
        done = {}
        ReliableReceiver(h2, 7000,
                         on_complete=lambda x, d: done.update({x: d}))
        payload = bytes(i % 251 for i in range(size))
        sender = ReliableSender(h1, h2.ip, 7000, payload,
                                window=window, timeout=0.1, mss=700)
        net.run(180.0)
        assert sender.complete
        assert done[sender.transfer_id] == payload
