"""Differential oracle for the sharded kernel.

``shards=1`` (one worker, one inclusive window, no messages) defines
ground truth; every test here asserts that higher shard counts — and
the multiprocess coordinator — produce *bit-identical* merged
observables.  The digest covers flows (ids, timestamps, byte counts),
per-host and per-switch counters, and per-link-direction counters, so
any divergence in event ordering, RNG consumption, or cut semantics
shows up as a digest mismatch.
"""

import json
import os

import pytest

from repro.errors import TopologyError
from repro.sim.shard import build_program, partition_topology, run_sharded
from repro.workload import WorkloadSpec, library, run_suite, run_workload
from repro.workload.spec import build_spec_topology


def _scaled(name: str, duration: float) -> WorkloadSpec:
    """A library scenario with a shortened horizon (identical program;
    the run just stops earlier — same at every shard count)."""
    spec = WorkloadSpec.from_dict(library()[name].to_dict())
    spec.duration = duration
    return spec


def _digests(spec: WorkloadSpec, shard_counts) -> dict:
    out = {}
    for shards in shard_counts:
        result = run_sharded(spec, shards=shards, processes=False)
        out[shards] = (result.digest, result.summary["flows_completed"])
    return out


@pytest.mark.parametrize("name,duration", [
    ("dc-heavy-tail", 2.5),
    ("incast-storm", 2.5),
    ("wan-diurnal", 4.2),       # keeps the cross-shard core0-core1 flap
    ("tenant-millions", 2.0),
])
def test_library_is_shard_count_invariant(name, duration):
    spec = _scaled(name, duration)
    results = _digests(spec, (1, 2, 4))
    digest1, flows1 = results[1]
    assert flows1 > 0, "oracle run completed no flows; test is vacuous"
    for shards in (2, 4):
        digest, flows = results[shards]
        assert digest == digest1, (
            f"{name}: shards={shards} diverged from the oracle"
        )
        assert flows == flows1


def test_wan_flap_actually_cuts_a_boundary_link():
    # The wan-diurnal flap targets core0--core1; with 2+ shards the
    # partitioner separates WAN regions, so that link is a boundary on
    # at least one partitioning and the epoch path is exercised.
    spec = _scaled("wan-diurnal", 4.2)
    topo = build_spec_topology(spec)
    part = partition_topology(topo, 3)
    flap_index = topo.link_ids()[("core0", "core1")]
    assert flap_index in part.cut_links
    result = run_sharded(spec, shards=3, processes=False)
    oracle = run_sharded(spec, shards=1)
    assert result.digest == oracle.digest
    # The cut dropped something: the flap fires mid-traffic.
    halves = result.observables["links"][str(flap_index)]
    dropped = sum(h["dropped_cut"] for h in halves.values())
    assert dropped == sum(
        h["dropped_cut"]
        for h in oracle.observables["links"][str(flap_index)].values()
    )


def test_multiprocess_matches_sequential():
    spec = _scaled("incast-storm", 2.5)
    seq = run_sharded(spec, shards=2, processes=False)
    proc = run_sharded(spec, shards=2, processes=True)
    assert proc.summary["processes"] is True
    assert seq.summary["processes"] is False
    assert proc.digest == seq.digest
    assert proc.summary["events"] == seq.summary["events"]


def _fuzz_spec(seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        f"fuzz-{seed}",
        topology={"family": "fat_tree", "size": 4},
        seed=seed,
        duration=2.0,
        traffic=[
            {"kind": "flows", "rate": 25.0,
             "sizes": {"dist": "pareto", "mean": 8_000, "alpha": 1.5},
             "start": 0.3, "duration": 1.5},
            {"kind": "incast", "fanin": 4, "bytes_per_sender": 5_000,
             "period": 0.7, "start": 0.4, "duration": 1.4},
            {"kind": "cbr", "rate_bps": 2_000_000, "packet_size": 500,
             "start": 0.2, "duration": 1.6},
        ],
    )


@pytest.mark.parametrize("seed", [101, 202])
def test_fuzz_specs_are_shard_count_invariant(seed):
    spec = _fuzz_spec(seed)
    results = _digests(spec, (1, 2, 4))
    digest1, flows1 = results[1]
    assert flows1 > 0
    assert results[2][0] == digest1
    assert results[4][0] == digest1


def test_run_workload_delegates_to_sharded_kernel():
    spec = _scaled("incast-storm", 2.0)
    via_runner = run_workload(spec, shards=2, shard_processes=False)
    direct = run_sharded(spec, shards=2, processes=False)
    assert via_runner.to_dict()["kind"] == "sharded_workload"
    assert via_runner.digest == direct.digest


def test_run_suite_sharded_writes_artifacts(tmp_path):
    spec = _scaled("incast-storm", 2.0)
    results = run_suite([spec], jobs=1, out_dir=str(tmp_path), shards=2)
    assert len(results) == 1
    entry = results[0]
    assert entry["kind"] == "sharded_workload"
    path = os.path.join(str(tmp_path), f"{spec.name}.json")
    with open(path) as fh:
        saved = json.load(fh)
    assert saved["digest"] == entry["digest"]
    oracle = run_sharded(spec, shards=1)
    assert entry["digest"] == oracle.digest


def test_shards_one_is_single_window():
    spec = _scaled("incast-storm", 2.0)
    result = run_sharded(spec, shards=1)
    assert result.effective_shards == 1
    assert result.summary["rounds"] == 1
    assert result.summary["lookahead"] is None
    assert result.summary["cut_links"] == 0


def test_program_is_deterministic_and_flow_ids_partition():
    spec = _scaled("dc-heavy-tail", 2.5)
    topo = build_spec_topology(spec)
    a = build_program(spec, topo)
    b = build_program(spec, topo)
    assert a.ops == b.ops
    assert a.sinks == b.sinks
    flow_ids = [op[4] for op in a.ops if op[0] == "flow"]
    assert len(flow_ids) == len(set(flow_ids))


def test_unsupported_fault_kinds_raise():
    doc = library()["incast-storm"].to_dict()
    doc["faults"] = [{"kind": "switch_crash", "switch": "c0", "at": 1.0,
                      "restart_after": 0.5}]
    spec = WorkloadSpec.from_dict(doc)
    with pytest.raises(TopologyError, match="static-forwarding"):
        run_sharded(spec, shards=2, processes=False)


def test_cbr_stream_flow_id_override():
    from repro.netem.network import Network
    from repro.netem.traffic import CBRStream
    from repro.netem.topology import Topology
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    net = Network(Topology.linear(1, hosts_per_switch=2), sim=sim)
    hosts = sorted(net.hosts)
    src, dst = net.hosts[hosts[0]], net.hosts[hosts[1]]
    stream = CBRStream(src, dst.ip, rate_bps=1e6, packet_size=200,
                       start=0.0, duration=0.1, flow_id=4_200_000)
    assert stream.flow_id == 4_200_000
    default = CBRStream(src, dst.ip, rate_bps=1e6, packet_size=200,
                        start=0.0, duration=0.1)
    assert default.flow_id != stream.flow_id
