"""Property tests for the shard partitioner.

The partitioner's two hard invariants (every node in exactly one
shard; every cut link strictly positive delay) plus determinism are
what the conservative-sync engine's correctness proof leans on, so
they are asserted here across every builder family the workload specs
use and a sweep of shard counts.
"""

import random
import re

import pytest

from repro.errors import TopologyError
from repro.netem import Topology
from repro.sim.shard import partition_topology


def _families():
    return {
        "fat_tree_k4": Topology.fat_tree(4),
        "fat_tree_k4_slow": Topology.fat_tree(4, delay=0.001),
        "carrier_wan": Topology.carrier_wan(cores=3, metros_per_core=2,
                                            access_per_metro=2,
                                            hosts_per_access=2),
        "linear": Topology.linear(6, hosts_per_switch=2),
        "waxman": Topology.waxman(12, hosts_per_switch=1, seed=7),
        "star": Topology.star(5),
        "single": Topology.single(4),
    }


@pytest.mark.parametrize("name", sorted(_families()))
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
def test_every_node_in_exactly_one_shard(name, shards):
    topo = _families()[name]
    part = partition_topology(topo, shards)
    part.validate()
    assert set(part.assignment) == set(topo.nodes)
    # Exactly one shard per node, and every shard id is in range.
    for node, shard in part.assignment.items():
        assert 0 <= shard < part.shards, (node, shard)
    # No shard is empty: effective count adapts to the region count.
    populated = {shard for shard in part.assignment.values()}
    assert populated == set(range(part.shards))


@pytest.mark.parametrize("name", sorted(_families()))
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_cut_links_have_positive_delay(name, shards):
    topo = _families()[name]
    part = partition_topology(topo, shards)
    for index in part.cut_links:
        link = topo.links[index]
        assert link.delay > 0.0, (link.a, link.b)
        assert part.assignment[link.a] != part.assignment[link.b]
    if part.cut_links:
        assert part.lookahead == min(topo.links[i].delay
                                     for i in part.cut_links)
        assert part.lookahead > 0.0
    else:
        assert part.lookahead == float("inf")


def test_zero_delay_links_are_never_cut():
    # Hand-build a topology where two "pods" are joined by a zero-delay
    # trunk: the trunk endpoints must be fused into one region.
    topo = Topology()
    for name in ("s1", "s2", "s3", "s4"):
        topo.add_switch(name)
    topo.add_link("s1", "s2", delay=0.0)       # must never be cut
    topo.add_link("s2", "s3", delay=0.001)
    topo.add_link("s3", "s4", delay=0.0)       # must never be cut
    for i, switch in enumerate(("s1", "s2", "s3", "s4")):
        topo.add_host(f"h{i}")
        topo.add_link(f"h{i}", switch)
    for shards in (2, 3, 4):
        part = partition_topology(topo, shards)
        part.validate()
        assert part.assignment["s1"] == part.assignment["s2"]
        assert part.assignment["s3"] == part.assignment["s4"]


@pytest.mark.parametrize("name", sorted(_families()))
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_partition_is_deterministic(name, shards):
    first = partition_topology(_families()[name], shards)
    for _ in range(3):
        again = partition_topology(_families()[name], shards)
        assert again.assignment == first.assignment
        assert again.cut_links == first.cut_links
        assert again.lookahead == first.lookahead
        assert again.shards == first.shards


def test_hosts_follow_their_switch():
    topo = Topology.fat_tree(4)
    part = partition_topology(topo, 4)
    for host, switch in topo.host_attachment().items():
        assert part.assignment[host] == part.assignment[switch]


def test_fat_tree_pods_stay_whole():
    topo = Topology.fat_tree(4)
    part = partition_topology(topo, 4)
    pods = {}
    for spec in topo.switches:
        m = re.match(r"^p(\d+)[ae]\d+$", spec.name)
        if m:
            pods.setdefault(m.group(1), set()).add(
                part.assignment[spec.name])
    for pod, shards_used in pods.items():
        assert len(shards_used) == 1, (pod, shards_used)


def test_shard_of_link_end():
    topo = Topology.fat_tree(4)
    part = partition_topology(topo, 2)
    for index in part.cut_links:
        link = topo.links[index]
        assert part.shard_of_link_end(index, 0) == part.assignment[link.b]
        assert part.shard_of_link_end(index, 1) == part.assignment[link.a]


def test_effective_shards_never_exceed_regions():
    # A linear chain of 3 switches has 3 fallback regions at most.
    topo = Topology.linear(3, hosts_per_switch=1)
    part = partition_topology(topo, 16)
    assert part.shards <= 3
    part.validate()


def test_random_topologies_hold_invariants():
    rng = random.Random(42)
    for trial in range(10):
        topo = Topology()
        n = rng.randint(2, 12)
        for i in range(n):
            topo.add_switch(f"x{i}")
        # Random connected switch graph with mixed delays.
        for i in range(1, n):
            j = rng.randrange(i)
            topo.add_link(f"x{i}", f"x{j}",
                          delay=rng.choice([0.0, 0.0001, 0.002]))
        for i in range(n):
            if rng.random() < 0.7:
                topo.add_host(f"x{i}h")
                topo.add_link(f"x{i}h", f"x{i}")
        for shards in (1, 2, 4):
            part = partition_topology(topo, shards)
            part.validate()
            assert set(part.assignment) == set(topo.nodes)


def test_invalid_shard_count_raises():
    with pytest.raises(TopologyError):
        partition_topology(Topology.linear(2), 0)
