"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(3.0, order.append, "latest")
        sim.run_until_idle()
        assert order == ["early", "late", "latest"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run_until_idle()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run_until_idle() == 0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, order.append, "second")

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert order == ["first", "second"]
        assert sim.now == 2.0


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0  # clock advanced to the bound

    def test_run_until_resumes_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == ["b"]

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(100):
            sim.schedule(float(i), lambda: None)
        executed = sim.run(max_events=10)
        assert executed == 10
        assert sim.pending_events == 90

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5


class TestPeriodic:
    def test_call_every_repeats_until_stopped(self):
        sim = Simulator()
        ticks = []
        stop = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        stop()
        sim.run(until=10.0)
        assert len(ticks) == 5

    def test_call_every_with_jitter_stays_deterministic(self):
        def run(seed):
            sim = Simulator(seed=seed)
            ticks = []
            sim.call_every(1.0, lambda: ticks.append(sim.now), jitter=0.1)
            sim.run(until=10.0)
            return ticks

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_call_every_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield sim.sleep(2.5)
            trace.append(("end", sim.now))

        sim.spawn(proc())
        sim.run_until_idle()
        assert trace == [("start", 0.0), ("end", 2.5)]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.sleep(1.0)
            return 42

        p = sim.spawn(proc())
        sim.run_until_idle()
        assert p.result == 42
        assert not p.alive

    def test_process_waits_on_signal(self):
        sim = Simulator()
        signal = sim.signal()
        got = []

        def waiter():
            value = yield signal.wait()
            got.append((value, sim.now))

        sim.spawn(waiter())
        sim.schedule(3.0, signal.fire, "hello")
        sim.run_until_idle()
        assert got == [("hello", 3.0)]

    def test_signal_wakes_all_waiters(self):
        sim = Simulator()
        signal = sim.signal()
        woken = []

        def waiter(i):
            yield signal.wait()
            woken.append(i)

        for i in range(3):
            sim.spawn(waiter(i))
        sim.schedule(1.0, signal.fire)
        sim.run_until_idle()
        assert sorted(woken) == [0, 1, 2]

    def test_process_waits_on_process(self):
        sim = Simulator()
        order = []

        def child():
            yield sim.sleep(2.0)
            order.append("child done")
            return "result"

        def parent():
            p = sim.spawn(child())
            yield p.wait()
            order.append("parent done")

        sim.spawn(parent())
        sim.run_until_idle()
        assert order == ["child done", "parent done"]

    def test_killed_process_stops(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append("a")
            yield sim.sleep(5.0)
            trace.append("b")

        p = sim.spawn(proc())
        sim.run(until=1.0)
        p.kill()
        sim.run_until_idle()
        assert trace == ["a"]
        assert not p.alive

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_until_idle()


class TestRandomness:
    def test_same_seed_same_stream(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_forked_rngs_are_independent_and_deterministic(self):
        a, b = Simulator(seed=7), Simulator(seed=7)
        fa1, fa2 = a.fork_rng(), a.fork_rng()
        fb1, _ = b.fork_rng(), b.fork_rng()
        assert fa1.random() == fb1.random()
        # Distinct children produce distinct streams.
        assert fa1.random() != fa2.random()


class TestPendingEventAccounting:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for event in events[:4]:
            event.cancel()
        assert sim.pending_events == 6

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert sim.pending_events == 0

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: event.cancel())
        sim.schedule(3.0, lambda: None)
        sim.run_until_idle()
        assert fired == [1]
        assert sim.pending_events == 0

    def test_count_survives_heavy_cancel_churn(self):
        sim = Simulator(seed=3)
        rng = sim.fork_rng()
        live = []
        for i in range(500):
            event = sim.schedule(rng.uniform(0.0, 5.0), lambda: None)
            if rng.random() < 0.5:
                event.cancel()
            else:
                live.append(event)
        assert sim.pending_events == len(live)
        processed = sim.run_until_idle()
        assert processed == len(live)
        assert sim.pending_events == 0


class TestObservers:
    """The read-only observer side-channel (repro.obs rides this)."""

    def test_tick_fires_before_events_at_or_after_its_time(self):
        sim = Simulator()
        order = []
        sim.observe_every(1.0, lambda: order.append(("tick", sim.now)))
        sim.schedule(0.5, lambda: order.append(("event", 0.5)))
        sim.schedule(1.0, lambda: order.append(("event", 1.0)))
        sim.schedule(1.5, lambda: order.append(("event", 1.5)))
        sim.run_until_idle()
        assert order[:3] == [
            ("event", 0.5), ("tick", 1.0), ("event", 1.0),
        ]

    def test_ticks_fire_at_run_until_boundary(self):
        sim = Simulator()
        ticks = []
        sim.observe_every(0.25, lambda: ticks.append(sim.now))
        sim.run(until=1.0)  # no events at all
        assert ticks == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert sim.now == 1.0
        assert sim.events_processed == 0

    def test_observers_consume_no_sequence_numbers(self):
        def run(with_observer):
            sim = Simulator(seed=42)
            seen = []
            if with_observer:
                sim.observe_every(0.1, lambda: None)
            rng = sim.fork_rng()
            for i in range(5):
                sim.schedule(rng.uniform(0.0, 3.0),
                             lambda i=i: seen.append((sim.now, i)))
            sim.run(until=3.0)
            return seen

        assert run(True) == run(False)

    def test_schedule_from_observer_raises(self):
        sim = Simulator()

        def naughty():
            sim.schedule(0.1, lambda: None)

        sim.observe_every(0.5, naughty)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError, match="read-only"):
            sim.run(until=1.0)

    def test_cancel_stops_future_ticks(self):
        sim = Simulator()
        ticks = []
        handle = sim.observe_every(0.2, lambda: ticks.append(sim.now))
        sim.schedule(1.0, handle.cancel)
        sim.run(until=2.0)
        assert all(t <= 1.0 for t in ticks)
        assert len(ticks) == 5

    def test_two_observers_fire_in_registration_order(self):
        sim = Simulator()
        order = []
        sim.observe_every(0.5, lambda: order.append("a"))
        sim.observe_every(0.5, lambda: order.append("b"))
        sim.run(until=0.5)
        assert order == ["a", "b"]

    def test_fired_counter_tracks_ticks(self):
        sim = Simulator()
        handle = sim.observe_every(0.1, lambda: None)
        sim.run(until=1.0)
        assert handle.fired == 10
