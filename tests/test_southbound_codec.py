"""ZOF wire-format tests: every message type roundtrips byte-exactly."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane import (
    Bucket,
    DecTTL,
    Group,
    GroupType,
    Match,
    Meter,
    Output,
    PopVLAN,
    PushVLAN,
    SetDSCP,
    SetEthDst,
    SetEthSrc,
    SetIPDst,
    SetIPSrc,
    SetL4Dst,
    SetL4Src,
    SetVLAN,
    VLAN_ABSENT,
)
from repro.errors import ProtocolError
from repro.southbound import (
    BarrierReply,
    BarrierRequest,
    ControllerRole,
    EchoReply,
    EchoRequest,
    Error,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsEntry,
    GroupMod,
    Hello,
    MeterMod,
    ModCommand,
    PacketIn,
    PacketOut,
    PortDesc,
    PortStatus,
    RoleReply,
    RoleRequest,
    StatsKind,
    StatsReply,
    StatsRequest,
    decode_actions,
    decode_match,
    decode_message,
    encode_actions,
    encode_match,
    encode_message,
)

ALL_ACTIONS = [
    Output(3),
    SetEthSrc("00:11:22:33:44:55"),
    SetEthDst("66:77:88:99:aa:bb"),
    SetIPSrc("10.0.0.1"),
    SetIPDst("10.0.0.2"),
    SetL4Src(1234),
    SetL4Dst(80),
    SetDSCP(46),
    PushVLAN(100, pcp=5),
    PopVLAN(),
    SetVLAN(200),
    DecTTL(),
    Group(7),
    Meter(9),
]

RICH_MATCH = Match(
    in_port=4,
    eth_src="00:11:22:33:44:55",
    eth_dst="66:77:88:99:aa:bb",
    eth_type=0x0800,
    vlan_vid=42,
    ip_src="10.0.0.0/8",
    ip_dst="192.168.1.7",
    ip_proto=6,
    ip_dscp=10,
    l4_src=1000,
    l4_dst=2000,
)


def roundtrip(msg):
    return decode_message(encode_message(msg))


class TestMatchCodec:
    def test_rich_match_roundtrip(self):
        blob = encode_match(RICH_MATCH)
        out, used = decode_match(blob)
        assert used == len(blob)
        assert out == RICH_MATCH

    def test_wildcard_roundtrip(self):
        out, used = decode_match(encode_match(Match()))
        assert out == Match()
        assert used == 2

    def test_vlan_absent_roundtrip(self):
        out, _ = decode_match(encode_match(Match(vlan_vid=VLAN_ABSENT)))
        assert out.get("vlan_vid") == VLAN_ABSENT

    def test_prefix_preserved(self):
        out, _ = decode_match(encode_match(Match(ip_dst="10.1.0.0/16")))
        assert str(out.get("ip_dst")) == "10.1.0.0/16"

    def test_truncated_rejected(self):
        blob = encode_match(RICH_MATCH)
        with pytest.raises(ProtocolError):
            decode_match(blob[:-3])
        with pytest.raises(ProtocolError):
            decode_match(b"\x00")

    def test_unknown_field_id_rejected(self):
        with pytest.raises(ProtocolError):
            decode_match(b"\x00\x03\x63\x01\x00")  # field 99, len 1


class TestActionCodec:
    def test_every_action_roundtrips(self):
        blob = encode_actions(ALL_ACTIONS)
        out, used = decode_actions(blob)
        assert used == len(blob)
        assert out == ALL_ACTIONS

    def test_empty_list(self):
        out, used = decode_actions(encode_actions([]))
        assert out == [] and used == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            decode_actions(b"\x00\x02\x63\x00")  # action type 99


class TestMessageRoundtrips:
    @pytest.mark.parametrize("msg", [
        Hello(),
        Error(Error.TABLE_FULL, "table 0 full"),
        EchoRequest(b"ping"),
        EchoReply(b"pong"),
        FeaturesRequest(),
        FeaturesReply(dpid=42, num_tables=4, ports=[
            PortDesc(1, b"\x02\x00\x00\x00\x00\x01", True),
            PortDesc(2, b"\x02\x00\x00\x00\x00\x02", False),
        ]),
        PacketIn(in_port=3, reason="no_match", data=b"\x00" * 20),
        PacketOut(in_port=2, actions=[Output(1)], data=b"\xff" * 14),
        FlowMod(command=FlowModCommand.ADD, table_id=2, match=RICH_MATCH,
                priority=77, actions=ALL_ACTIONS, idle_timeout=2.5,
                hard_timeout=60.0, cookie=0xDEAD, goto_table=3,
                flags=FlowMod.SEND_FLOW_REM),
        FlowMod(command=FlowModCommand.DELETE, match=Match()),
        FlowRemoved(table_id=1, match=RICH_MATCH, priority=7,
                    cookie=99, reason="hard_timeout", duration=12.5,
                    packet_count=1000, byte_count=64000),
        PortStatus("down", PortDesc(5, b"\x02\x00\x00\x00\x00\x05",
                                    False)),
        GroupMod(ModCommand.ADD, group_id=9,
                 group_type=GroupType.FAST_FAILOVER,
                 buckets=[
                     Bucket([Output(1)], watch_port=1, weight=3),
                     Bucket([Output(2)], watch_port=None, weight=1),
                 ]),
        MeterMod(ModCommand.MODIFY, meter_id=4, rate_bps=1e6,
                 burst_bytes=1500),
        StatsRequest(StatsKind.FLOW, table_id=2),
        StatsReply(StatsKind.PORT, [{
            "port": 1, "rx_packets": 10, "rx_bytes": 1000,
            "tx_packets": 20, "tx_bytes": 2000, "tx_drops": 3,
        }]),
        StatsReply(StatsKind.TABLE, [{
            "table_id": 0, "active": 5, "lookups": 100, "matches": 90,
        }]),
        StatsReply(StatsKind.AGGREGATE, [{
            "packets": 7, "bytes": 700, "flows": 3,
        }]),
        BarrierRequest(),
        BarrierReply(),
        RoleRequest(ControllerRole.PRIMARY, generation_id=12),
        RoleReply(ControllerRole.SECONDARY, generation_id=13),
    ])
    def test_roundtrip(self, msg):
        out = roundtrip(msg)
        assert out == msg

    def test_flow_stats_reply_roundtrip(self):
        reply = StatsReply(StatsKind.FLOW, [
            FlowStatsEntry(0, 10, 77, 1000, 64000, 3.5, RICH_MATCH),
            FlowStatsEntry(1, 20, 78, 1, 64, 0.5, Match()),
        ])
        out = roundtrip(reply)
        assert out.entries == reply.entries

    def test_xid_preserved(self):
        msg = EchoRequest(b"x")
        msg.xid = 1234
        assert roundtrip(msg).xid == 1234

    def test_goto_none_preserved(self):
        fm = FlowMod(goto_table=None)
        assert roundtrip(fm).goto_table is None
        fm2 = FlowMod(goto_table=0)
        assert roundtrip(fm2).goto_table == 0


class TestFraming:
    def test_bad_version_rejected(self):
        raw = bytearray(encode_message(Hello()))
        raw[0] = 99
        with pytest.raises(ProtocolError):
            decode_message(bytes(raw))

    def test_length_mismatch_rejected(self):
        raw = encode_message(EchoRequest(b"abc"))
        with pytest.raises(ProtocolError):
            decode_message(raw + b"extra")
        with pytest.raises(ProtocolError):
            decode_message(raw[:-1])

    def test_unknown_type_rejected(self):
        raw = bytearray(encode_message(Hello()))
        raw[1] = 200
        with pytest.raises(ProtocolError):
            decode_message(bytes(raw))

    def test_short_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\x01\x00")

    @given(data=st.binary(max_size=200),
           port=st.integers(min_value=0, max_value=2**32 - 1),
           reason=st.sampled_from(["no_match", "action", "ttl_expired"]))
    def test_packet_in_roundtrip_property(self, data, port, reason):
        msg = PacketIn(port, reason, data)
        out = roundtrip(msg)
        assert (out.in_port, out.reason, out.data) == (port, reason, data)
