"""Stats poller and intent framework tests."""

import pytest

from repro.controller import (
    IntentService,
    IntentState,
    PortStatsUpdate,
    StatsPoller,
)
from repro.core import ZenPlatform
from repro.errors import IntentError
from repro.netem import CBRStream, FlowSink, Topology


class TestStatsPoller:
    def test_rates_derived_from_samples(self):
        platform = ZenPlatform(
            Topology.single(2, bandwidth_bps=100e6)
        ).start()
        poller = platform.add_app(StatsPoller(interval=0.5))
        h1, h2 = platform.host("h1"), platform.host("h2")
        FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=10e6, packet_size=1000,
                  duration=5.0)
        platform.run(5.0)
        dpid = platform.switch("s1").dpid
        rx_port = platform.net.port_of("s1", "h1")
        rate = poller.rate(dpid, rx_port)
        assert rate is not None
        # CBR at 10 Mb/s (plus framing/ARP noise).
        assert rate.rx_bps == pytest.approx(10e6, rel=0.15)
        poller.stop()

    def test_update_events_published(self):
        platform = ZenPlatform(Topology.single(1)).start()
        updates = []
        platform.controller.subscribe(PortStatsUpdate, updates.append)
        platform.add_app(StatsPoller(interval=0.5))
        platform.run(2.0)
        assert updates
        assert updates[0].dpid == platform.switch("s1").dpid

    def test_elapsed_measures_reply_gap_not_nominal_interval(self):
        """A congested control channel delays replies; rates must divide
        by the measured gap (PortStatsUpdate.elapsed), not the nominal
        polling interval, or they overshoot by the delay ratio."""
        platform = ZenPlatform(
            Topology.single(2, bandwidth_bps=100e6)
        ).start()
        poller = platform.add_app(StatsPoller(interval=0.5))
        h1, h2 = platform.host("h1"), platform.host("h2")
        FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=10e6, packet_size=1000,
                  duration=10.0)
        dpid = platform.switch("s1").dpid
        rx_port = platform.net.port_of("s1", "h1")
        samples = []

        def on_update(event):
            rate = poller.rate(dpid, rx_port)
            samples.append((event.elapsed,
                            rate.rx_bps if rate else None))

        platform.controller.subscribe(PortStatsUpdate, on_update)
        platform.run(2.0)
        # Congest the control channel: the round trip jumps by ~0.8 s,
        # so exactly one reply arrives far later than the cadence.
        platform.net.channels["s1"].latency = 0.4
        platform.run(4.0)
        poller.stop()

        elapsed = [e for e, _ in samples]
        assert elapsed[0] is None  # nothing to measure on first sample
        # Steady cadence matches the interval (0.01 s poll jitter).
        assert elapsed[1] == pytest.approx(0.5, abs=0.05)
        # The delayed reply is visible as a measured gap, which nominal
        # interval reporting would have hidden entirely.
        delayed = max(e for e in elapsed if e is not None)
        assert delayed > 1.0
        # Across the transient the measured-gap rate must beat what
        # nominal-interval division would have reported.  (Counters are
        # snapshotted at the switch when the request lands, so even the
        # measured rate dips during the jump — but nominal division
        # overshoots truth by the full delay ratio.)
        i = next(i for i, (e, _) in enumerate(samples) if e == delayed)
        measured_rate = samples[i][1]
        nominal_rate = measured_rate * delayed / poller.interval
        assert abs(measured_rate - 10e6) < abs(nominal_rate - 10e6)
        # Once the latency is steady again, rates are accurate.
        assert samples[-1][1] == pytest.approx(10e6, rel=0.15)

    def test_busiest_ports_ranking(self):
        platform = ZenPlatform(
            Topology.single(3, bandwidth_bps=100e6)
        ).start()
        poller = platform.add_app(StatsPoller(interval=0.5))
        h1, h2 = platform.host("h1"), platform.host("h2")
        FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=20e6, duration=4.0)
        platform.run(4.0)
        top = poller.busiest_ports(top_n=2)
        assert len(top) == 2
        assert top[0].tx_bps >= top[1].tx_bps


@pytest.fixture
def intent_platform():
    platform = ZenPlatform(
        Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9),
        profile="bare",
        intents=True,
    ).start()
    # Hosts must be known before intents can compile: static ARP plus a
    # hello packet pins each host's attachment.
    hosts = list(platform.net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for host in hosts:
        host.send_udp(hosts[0].ip if host is not hosts[-1] else hosts[1].ip,
                      1, 1, b"hello")
    platform.run(1.0)
    return platform


class TestIntents:
    def test_intent_installs_connectivity(self, intent_platform):
        platform = intent_platform
        h1, h3 = platform.host("h1"), platform.host("h3")
        intent = platform.intents.connect_ips(h1.ip, h3.ip)
        platform.run(0.5)
        assert intent.state == IntentState.INSTALLED
        session = h1.ping(h3.ip, count=3, interval=0.1)
        platform.run(3.0)
        assert session.received == 3

    def test_withdraw_removes_rules(self, intent_platform):
        platform = intent_platform
        h1, h3 = platform.host("h1"), platform.host("h3")
        intent = platform.intents.connect_ips(h1.ip, h3.ip)
        platform.run(0.5)
        flows_with = sum(dp.flow_count()
                         for dp in platform.net.switches.values())
        platform.intents.withdraw(intent.intent_id)
        platform.run(0.5)
        flows_without = sum(dp.flow_count()
                            for dp in platform.net.switches.values())
        assert intent.state == IntentState.WITHDRAWN
        assert flows_without < flows_with
        with pytest.raises(IntentError):
            platform.intents.withdraw(intent.intent_id)

    def test_intent_reroutes_around_failure(self, intent_platform):
        platform = intent_platform
        h1, h3 = platform.host("h1"), platform.host("h3")
        intent = platform.intents.connect_ips(h1.ip, h3.ip)
        platform.run(0.5)
        original_path = intent.paths[0]
        # Cut a link on the installed path; the ring has an alternative.
        a = platform.net.switch_name(original_path[0])
        b = platform.net.switch_name(original_path[1])
        platform.fail_link(a, b)
        platform.run(1.0)
        assert intent.state == IntentState.INSTALLED
        assert intent.reroutes == 1
        assert intent.paths[0] != original_path
        session = h1.ping(h3.ip, count=3, interval=0.1)
        platform.run(3.0)
        assert session.received == 3
        assert platform.intents.reroute_done_times

    def test_unaffected_intents_not_touched(self, intent_platform):
        platform = intent_platform
        h1, h2, h3 = (platform.host(n) for n in ("h1", "h2", "h3"))
        a_b = platform.intents.connect_ips(h1.ip, h2.ip)
        platform.run(0.5)
        # Fail a link not on h1-h2's path (path is s1-s2; cut s3-s4).
        assert a_b.paths[0] in ([1, 2], [2, 1])
        platform.fail_link("s3", "s4")
        platform.run(1.0)
        assert a_b.reroutes == 0

    def test_failed_intent_recovers_when_topology_heals(self,
                                                        intent_platform):
        platform = intent_platform
        h1, h3 = platform.host("h1"), platform.host("h3")
        # Sever both ring paths between s1 and s3.
        platform.fail_link("s1", "s2")
        platform.fail_link("s1", "s4")
        platform.run(0.5)
        intent = platform.intents.connect_ips(h1.ip, h3.ip)
        platform.run(0.5)
        assert intent.state == IntentState.FAILED
        assert platform.intents.failed_count() == 1
        platform.recover_link("s1", "s2")
        platform.run(3.0)  # rediscovery + recompile
        assert intent.state == IntentState.INSTALLED
        assert platform.intents.installed_count() == 1

    def test_intent_service_requires_dependencies(self):
        from repro.controller import Controller
        from repro.sim import Simulator

        controller = Controller(Simulator())
        with pytest.raises(IntentError):
            controller.add_app(IntentService())
