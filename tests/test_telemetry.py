"""Telemetry plane tests.

Three layers of coverage:

* unit tests for the primitives (registry, tracer, flow records,
  profiler) and their null stand-ins;
* end-to-end wiring: a reactive platform with telemetry on must yield
  populated metrics, a trace that crosses every stage of the stack, and
  flow records;
* the determinism contract — telemetry must never perturb the
  simulation, and identical seeds must produce identical telemetry.
"""

import pytest

from repro.cli import main as cli_main
from repro.core import ZenPlatform
from repro.netem import Topology
from repro.telemetry import (
    NULL_METRIC,
    NULL_TELEMETRY,
    MetricsRegistry,
    Telemetry,
    Tracer,
)
from repro.telemetry.export import best_trace, render_report, to_json
from repro.telemetry.flowrecords import (
    AppProfiler,
    FlowRecordExporter,
    NullFlowRecordExporter,
)
from repro.telemetry.registry import NullRegistry
from repro.telemetry.trace import STAGES, NullTracer


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_zero_label_counter_reads_as_bare_metric(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", "All events")
        c.inc()
        c.inc(3)
        assert reg.get("events_total") == 4

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        c = reg.counter("ups_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_family_memoises_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("tx_total", "TX", ("link",))
        a = fam.labels("l1")
        b = fam.labels("l1")
        assert a is b
        a.inc(2)
        fam.labels("l2").inc(5)
        assert reg.get("tx_total", "l1") == 2
        assert reg.get("tx_total", "l2") == 5

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        fam = reg.counter("d_total", "", ("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_reregistration_must_agree(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "", ("l",))
        # Same name, same schema: fine (get-or-create).
        reg.counter("x_total", "", ("l",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "", ("l",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "", ("other",))

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert reg.get("depth") == 7

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.get("lat")
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1.0": 3}

    def test_snapshot_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.counter("a_total", "", ("l",)).labels("z").inc()
        snap = reg.snapshot()
        assert list(snap) == ["a_total", "b_total"]
        assert snap["a_total"]["values"] == {"z": 1}
        assert snap["b_total"]["values"] == {"": 1}

    def test_null_registry_is_free_and_silent(self):
        reg = NullRegistry()
        assert not reg.enabled
        c = reg.counter("whatever")
        assert c is NULL_METRIC
        c.inc()
        c.labels("x").observe(3)  # every mutator is a no-op
        assert reg.snapshot() == {}


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_accumulate_in_order(self):
        tracer = Tracer()
        tid = tracer.start_trace("ping")
        tracer.record(tid, "host.tx", "host", host="h1")
        tracer.record(tid, "link.transit", "link", start=0.0, end=0.001)
        spans = tracer.spans(tid)
        assert [s.name for s in spans] == ["host.tx", "link.transit"]
        assert spans[1].duration == pytest.approx(0.001)
        assert tracer.stages_of(tid) == ["host", "link"]

    def test_record_without_trace_is_noop(self):
        tracer = Tracer()
        tracer.record(None, "x", "host")
        tracer.record(999, "x", "host")  # unknown id
        assert tracer.trace_count == 0

    def test_sampling_keeps_every_nth(self):
        tracer = Tracer(sample_every=3)
        picks = [tracer.start_trace(f"p{i}") for i in range(9)]
        assert [p is not None for p in picks] == [
            True, False, False, True, False, False, True, False, False,
        ]
        assert tracer.trace_count == 3

    def test_max_traces_cap_counts_drops(self):
        tracer = Tracer(max_traces=2)
        assert tracer.start_trace() is not None
        assert tracer.start_trace() is not None
        assert tracer.start_trace() is None
        assert tracer.dropped == 1

    def test_stash_adopt_is_fifo_per_key(self):
        tracer = Tracer(clock=lambda: 42.0)
        t1, t2 = tracer.start_trace(), tracer.start_trace()
        tracer.stash(("pi", b"wire"), t1)
        tracer.stash(("pi", b"wire"), t2)
        assert tracer.adopt(("pi", b"wire")) == (t1, 42.0)
        assert tracer.adopt(("pi", b"wire")) == (t2, 42.0)
        assert tracer.adopt(("pi", b"wire")) == (None, 0.0)
        assert tracer.adopt(("never", 0)) == (None, 0.0)

    def test_clock_stamps_default_times(self):
        now = [7.5]
        tracer = Tracer(clock=lambda: now[0])
        tid = tracer.start_trace()
        tracer.record(tid, "x", "host")
        span = tracer.spans(tid)[0]
        assert span.start == span.end == 7.5

    def test_null_tracer_never_samples(self):
        tracer = NullTracer()
        assert not tracer.enabled
        assert tracer.start_trace("x") is None
        tracer.stash("k", 1)
        assert tracer.adopt("k") == (None, 0.0)
        assert tracer.trace_count == 0


# ----------------------------------------------------------------------
# Flow records + profiler
# ----------------------------------------------------------------------
class _FakeMatch:
    def __init__(self, fields):
        self.fields = fields


class _FakeEntry:
    def __init__(self, fields):
        self.priority = 10
        self.cookie = 7
        self.packet_count = 3
        self.byte_count = 300
        self.install_time = 1.0
        self.match = _FakeMatch(fields)


class TestFlowRecords:
    def test_record_carries_five_tuple_and_counters(self):
        exporter = FlowRecordExporter()
        entry = _FakeEntry({"ip_src": "10.0.0.1", "ip_dst": "10.0.0.2",
                            "ip_proto": 17, "eth_type": 0x800})
        exporter.record_removal(5, 0, entry, "idle_timeout", now=3.5)
        assert len(exporter) == 1
        rec = exporter.records[0]
        assert rec.five_tuple == "10.0.0.1>10.0.0.2 proto=17 *>*"
        assert (rec.packets, rec.bytes) == (3, 300)
        assert rec.duration == pytest.approx(2.5)
        assert rec.reason == "idle_timeout"
        assert rec.to_dict()["match"]["eth_type"] == str(0x800)

    def test_cap_drops_excess(self):
        exporter = FlowRecordExporter(max_records=1)
        entry = _FakeEntry({})
        exporter.record_removal(1, 0, entry, "delete", now=1.0)
        exporter.record_removal(1, 0, entry, "delete", now=1.0)
        assert len(exporter) == 1
        assert exporter.dropped == 1

    def test_null_exporter_drops_for_free(self):
        exporter = NullFlowRecordExporter()
        exporter.record_removal(1, 0, _FakeEntry({}), "delete", now=1.0)
        assert len(exporter) == 0

    def test_profiler_counts_are_deterministic_view(self):
        profiler = AppProfiler()
        profiler.record("l2", "PacketInEvent", 0.002)
        profiler.record("l2", "PacketInEvent", 0.001)
        profiler.record("arp", "PacketInEvent", 0.005)
        assert profiler.call_counts() == {
            "arp": {"PacketInEvent": 1},
            "l2": {"PacketInEvent": 2},
        }
        rows = profiler.rows()
        assert rows[0][0] == "arp"  # most wall time first
        assert rows[1][2] == 2


# ----------------------------------------------------------------------
# The assembled plane
# ----------------------------------------------------------------------
class TestTelemetryObject:
    def test_enabled_plane_has_live_primitives(self):
        tel = Telemetry()
        assert tel.enabled and tel.tracing
        assert tel.metrics.enabled
        assert tel.flows.enabled
        assert tel.profiler.enabled

    def test_disabled_plane_is_all_nulls(self):
        tel = Telemetry(enabled=False)
        assert not tel.enabled and not tel.tracing
        assert not tel.metrics.enabled
        assert tel.tracer.start_trace("x") is None
        assert NULL_TELEMETRY.enabled is False

    def test_tracing_can_be_off_while_metrics_stay_on(self):
        tel = Telemetry(trace=False)
        assert tel.enabled and not tel.tracing
        assert tel.metrics.enabled


# ----------------------------------------------------------------------
# End-to-end wiring
# ----------------------------------------------------------------------
def _reactive_platform(telemetry=None, seed=0):
    topo = Topology.linear(3, hosts_per_switch=1, bandwidth_bps=1e9)
    return ZenPlatform(topo, profile="reactive", seed=seed,
                       telemetry=telemetry)


class TestEndToEnd:
    def test_trace_crosses_every_stage(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        assert platform.ping_all(count=1, settle=8.0) == 1.0
        pick = best_trace(tel.tracer)
        assert pick is not None
        _tid, label, spans = pick
        assert label  # "h1 Ethernet/..." style origin label
        assert len(spans) >= 5
        stages = {s.stage for s in spans}
        # The acceptance bar: host -> dataplane -> controller -> app.
        assert {"host", "dataplane", "controller", "app"} <= stages
        # The full wiring also covers the link and channel hops.
        assert stages == set(STAGES)

    def test_metrics_populated_by_every_layer(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        platform.ping_all(count=1, settle=8.0)
        reg = tel.metrics
        assert reg.get("sim_events_total") > 0
        dpid = str(platform.switch("s1").dpid)
        assert reg.get("switch_rx_packets_total", dpid) > 0
        assert reg.get("switch_packet_ins_total", dpid) > 0
        assert reg.family("link_tx_packets_total").children
        assert reg.family("table_lookups_total").children
        assert reg.family("channel_messages_total").children
        assert reg.get("controller_packet_ins_total") > 0
        delay = reg.get("controller_packet_in_delay_seconds")
        assert delay["count"] > 0

    def test_flow_records_exported(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        platform.ping_all(count=1, settle=8.0)
        # The learning switch installs idle-timeout flows; make sure any
        # still-resident entries are flushed so the export is complete.
        for dp in platform.net.switches.values():
            tel.flows.flush_datapath(dp)
        assert len(tel.flows) >= 1
        reasons = {r.reason for r in tel.flows.records}
        assert reasons <= {"idle_timeout", "hard_timeout", "delete",
                           "eviction", "active"}
        assert all(r.packets >= 0 and r.duration >= 0
                   for r in tel.flows.records)

    def test_report_renders_all_sections(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        platform.ping_all(count=1, settle=8.0)
        for dp in platform.net.switches.values():
            tel.flows.flush_datapath(dp)
        report = render_report(tel)
        assert "Metrics" in report
        assert "trace #" in report
        assert "Flow records" in report

    def test_cli_telemetry_command(self, capsys):
        assert cli_main(["telemetry", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "Metrics" in out
        assert "trace #" in out
        assert "Flow records" in out

    def test_cli_telemetry_json(self, capsys):
        assert cli_main(["telemetry", "--size", "2",
                         "--format", "json"]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["enabled"] is True
        assert doc["traces"]["count"] >= 1
        assert doc["flow_records"]["count"] >= 1


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------
def _flow_setup_fingerprint(telemetry):
    """E1-style flow-setup run reduced to its simulation observables."""
    platform = _reactive_platform(telemetry, seed=7).start()
    delivery = platform.ping_all(count=1, settle=8.0)
    switches = {
        name: (dp.packets_forwarded, dp.packets_to_controller,
               dp.packets_dropped, dp.flow_count())
        for name, dp in sorted(platform.net.switches.items())
    }
    return {
        "delivery": delivery,
        "events": platform.sim.events_processed,
        "now": platform.sim.now,
        "control_messages": platform.total_control_messages(),
        "control_bytes": platform.total_control_bytes(),
        "switches": switches,
    }


class TestDeterminism:
    def test_runs_are_repeatable(self):
        assert _flow_setup_fingerprint(None) == _flow_setup_fingerprint(None)

    def test_telemetry_never_perturbs_the_simulation(self):
        """Enabling the full plane must not change a single sim observable.

        This is the overhead/benchmark invariant: telemetry never
        schedules events and never draws from the kernel RNG, so the E1
        flow-setup run is bit-identical with it on, off, or explicitly
        disabled.
        """
        baseline = _flow_setup_fingerprint(None)
        assert _flow_setup_fingerprint(Telemetry(enabled=False)) == baseline
        assert _flow_setup_fingerprint(Telemetry()) == baseline

    def test_identical_seeds_identical_telemetry_output(self):
        def run():
            tel = Telemetry()
            platform = _reactive_platform(tel, seed=3).start()
            platform.ping_all(count=1, settle=8.0)
            for dp in platform.net.switches.values():
                tel.flows.flush_datapath(dp)
            return to_json(tel)

        assert run() == run()


# ----------------------------------------------------------------------
# Retention bounds and cardinality guards (the obs-plane satellites)
# ----------------------------------------------------------------------
class TestTracerSpanRing:
    def test_span_total_stays_bounded(self):
        tracer = Tracer(max_traces=1000, max_spans=50)
        for i in range(100):
            tid = tracer.start_trace(f"pkt-{i}")
            for j in range(3):
                tracer.record(tid, f"hop-{j}", "switch")
        assert tracer._span_total <= 50
        assert tracer.dropped_spans == 300 - tracer._span_total

    def test_oldest_traces_evicted_first(self):
        tracer = Tracer(max_traces=1000, max_spans=10)
        first = tracer.start_trace("first")
        for _ in range(5):
            tracer.record(first, "span", "switch")
        later = [tracer.start_trace(f"t{i}") for i in range(4)]
        for tid in later:
            tracer.record(tid, "span", "switch")
            tracer.record(tid, "span2", "switch")
        # first (5 spans) was evicted to make room for the newer traces.
        assert first not in tracer._spans
        assert all(tid in tracer._spans for tid in later[1:])

    def test_live_trace_survives_even_when_oldest(self):
        tracer = Tracer(max_traces=1000, max_spans=4)
        tid = tracer.start_trace("huge")
        for i in range(10):
            tracer.record(tid, f"s{i}", "switch")
        # A single trace larger than the ring is left intact.
        assert tid in tracer._spans
        assert len(tracer._spans[tid]) == 10
        assert tracer.dropped_spans == 0

    def test_on_drop_reports_eviction_sizes(self):
        tracer = Tracer(max_traces=1000, max_spans=4)
        drops = []
        tracer.on_drop = drops.append
        for i in range(4):
            tid = tracer.start_trace(f"t{i}")
            tracer.record(tid, "a", "switch")
            tracer.record(tid, "b", "switch")
        assert sum(drops) == tracer.dropped_spans > 0

    def test_telemetry_wires_drop_counter(self):
        telemetry = Telemetry(max_spans=4)
        for i in range(4):
            tid = telemetry.tracer.start_trace(f"t{i}")
            telemetry.tracer.record(tid, "a", "switch")
            telemetry.tracer.record(tid, "b", "switch")
        counter = telemetry.metrics.counter(
            "telemetry_trace_dropped_spans_total", ""
        )
        assert counter.value == telemetry.tracer.dropped_spans > 0


class TestHistogramQuantiles:
    def test_quantile_tracks_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "test")
        for i in range(1, 101):
            hist.observe(i / 100.0)
        assert hist.quantile(0.5) == pytest.approx(0.5, rel=0.05)
        assert hist.quantile(0.95) == pytest.approx(0.95, rel=0.05)
        assert hist.quantile(0.0) == pytest.approx(0.01, rel=0.05)

    def test_snapshot_exports_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "test")
        hist.observe(0.004)
        snap = hist.snapshot()
        assert set(snap["quantiles"]) == {"p50", "p95", "p99"}
        assert snap["quantiles"]["p50"] == pytest.approx(0.004, rel=0.05)

    def test_empty_histogram_quantile_is_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "test")
        assert hist.quantile(0.5) is None
        assert hist.snapshot()["quantiles"]["p99"] is None

    def test_metrics_table_shows_percentiles(self):
        from repro.telemetry.export import metrics_table

        registry = MetricsRegistry()
        registry.histogram("h", "test").observe(0.25)
        text = metrics_table(registry).render()
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestLabelCardinalityGuard:
    def test_overflow_collapses_into_sentinel_child(self):
        from repro.telemetry.registry import OVERFLOW_LABEL

        registry = MetricsRegistry(max_label_sets=4)
        family = registry.counter("hits_total", "test", ("path",))
        for i in range(10):
            family.labels(f"/page/{i}").inc()
        assert len(family.children) == 5  # 4 real + the sentinel
        sentinel = family.labels("/page/999")
        assert sentinel is family.children[(OVERFLOW_LABEL,)]
        # The 6 overflowed increments all landed on the sentinel child.
        assert sentinel.value == 6.0

    def test_existing_children_still_resolve_after_overflow(self):
        registry = MetricsRegistry(max_label_sets=2)
        family = registry.counter("hits_total", "test", ("path",))
        a = family.labels("/a")
        family.labels("/b")
        family.labels("/c")  # overflow
        assert family.labels("/a") is a

    def test_overflow_counter_counts_redirected_calls(self):
        registry = MetricsRegistry(max_label_sets=2)
        family = registry.counter("hits_total", "test", ("path",))
        for i in range(6):
            family.labels(f"/{i}").inc()
        overflow = registry.counter("telemetry_label_overflow_total",
                                    "", ("family",))
        assert overflow.labels("hits_total").value == 4.0

    def test_zero_label_families_never_overflow(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("a_total", "t").inc()
        registry.gauge("b", "t").set(1)
        assert registry.counter("a_total", "t").value == 1.0
