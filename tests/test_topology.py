"""Topology description and builder tests."""

import pytest

from repro.errors import TopologyError
from repro.netem import Topology


class TestConstruction:
    def test_auto_names_and_ids(self):
        topo = Topology()
        s1 = topo.add_switch()
        s2 = topo.add_switch()
        h1 = topo.add_host()
        assert (s1, s2, h1) == ("s1", "s2", "h1")
        assert topo.nodes[s1].dpid == 1
        assert topo.nodes[s2].dpid == 2
        assert str(topo.nodes[h1].ip) == "10.0.0.1"

    def test_explicit_dpid_respected_and_deduplicated(self):
        topo = Topology()
        topo.add_switch("core", dpid=100)
        with pytest.raises(TopologyError):
            topo.add_switch("other", dpid=100)
        nxt = topo.add_switch()
        assert topo.nodes[nxt].dpid == 101

    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_switch("x")
        with pytest.raises(TopologyError):
            topo.add_host("x")

    def test_duplicate_host_ip_rejected(self):
        topo = Topology()
        topo.add_host(ip="10.0.0.5")
        with pytest.raises(TopologyError):
            topo.add_host(ip="10.0.0.5")

    def test_link_validation(self):
        topo = Topology()
        s = topo.add_switch()
        h1, h2 = topo.add_host(), topo.add_host()
        topo.add_link(h1, s)
        with pytest.raises(TopologyError):
            topo.add_link(h1, s)  # duplicate
        with pytest.raises(TopologyError):
            topo.add_link(s, s)  # self-link
        with pytest.raises(TopologyError):
            topo.add_link(h1, h2)  # host-host
        with pytest.raises(TopologyError):
            topo.add_link("nope", s)  # unknown node

    def test_link_params_stored(self):
        topo = Topology()
        s1, s2 = topo.add_switch(), topo.add_switch()
        spec = topo.add_link(s1, s2, bandwidth_bps=1e9, delay=0.01,
                             loss_rate=0.1, queue_capacity=50)
        assert spec.bandwidth_bps == 1e9
        assert spec.delay == 0.01
        assert topo.find_link(s2, s1) is spec  # order-insensitive

    def test_neighbours(self):
        topo = Topology.linear(3)
        assert set(topo.neighbours("s2")) >= {"s1", "s3"}


class TestValidation:
    def test_disconnected_rejected(self):
        topo = Topology()
        topo.add_switch()
        topo.add_switch()
        with pytest.raises(TopologyError):
            topo.validate()

    def test_multihomed_host_rejected(self):
        topo = Topology()
        s1, s2 = topo.add_switch(), topo.add_switch()
        h = topo.add_host()
        topo.add_link(s1, s2)
        topo.add_link(h, s1)
        topo.add_link(h, s2)
        with pytest.raises(TopologyError):
            topo.validate()

    def test_isolated_host_rejected(self):
        topo = Topology()
        topo.add_switch()
        topo.add_host()
        with pytest.raises(TopologyError):
            topo.validate()


class TestBuilders:
    def test_single(self):
        topo = Topology.single(4)
        topo.validate()
        assert len(topo.switches) == 1
        assert len(topo.hosts) == 4
        assert len(topo.links) == 4

    def test_linear(self):
        topo = Topology.linear(5, hosts_per_switch=2)
        topo.validate()
        assert len(topo.switches) == 5
        assert len(topo.hosts) == 10
        assert len(topo.links) == 4 + 10

    def test_ring(self):
        topo = Topology.ring(4)
        topo.validate()
        switch_links = [link for link in topo.links
                        if topo.nodes[link.a].is_switch
                        and topo.nodes[link.b].is_switch]
        assert len(switch_links) == 4  # the cycle
        with pytest.raises(TopologyError):
            Topology.ring(2)

    def test_star(self):
        topo = Topology.star(3, hosts_per_leaf=2)
        topo.validate()
        assert len(topo.switches) == 4
        assert len(topo.hosts) == 6
        assert len(topo.neighbours("hub")) == 3

    def test_tree(self):
        topo = Topology.tree(depth=2, fanout=2)
        topo.validate()
        assert len(topo.switches) == 3   # root + 2 children
        assert len(topo.hosts) == 4      # leaves

    def test_fat_tree_k4(self):
        topo = Topology.fat_tree(4)
        topo.validate()
        assert len(topo.switches) == 20  # 4 core + 8 agg + 8 edge
        assert len(topo.hosts) == 16     # k^3/4
        assert len(topo.links) == 48     # 16+16 fabric + 16 host

    def test_fat_tree_k_must_be_even(self):
        with pytest.raises(TopologyError):
            Topology.fat_tree(3)

    def test_mesh(self):
        topo = Topology.mesh(4)
        topo.validate()
        switch_links = [link for link in topo.links
                        if topo.nodes[link.a].is_switch
                        and topo.nodes[link.b].is_switch]
        assert len(switch_links) == 6  # C(4,2)

    def test_waxman_connected_and_deterministic(self):
        a = Topology.waxman(10, seed=5)
        b = Topology.waxman(10, seed=5)
        a.validate()
        assert len(a.links) == len(b.links)
        assert [(link.a, link.b) for link in a.links] == [
            (link.a, link.b) for link in b.links
        ]

    def test_builders_pass_link_options(self):
        topo = Topology.linear(2, bandwidth_bps=42.0)
        assert all(link.bandwidth_bps == 42.0 for link in topo.links)
