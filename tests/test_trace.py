"""Causal trace plane tests (PR 10).

Layers of coverage:

* span-tree mechanics on the tracer (span ids, parent links,
  ``end_span``, foreign adoption) and the critical-path walk;
* the stash leak + cross-epoch adoption fixes on the control channel;
* tracer eviction pressure surfaced end-to-end through OpenMetrics;
* TraceArtifact merge across per-shard tracers and the flight
  recorder's triggered dumps;
* the acceptance criteria: a sharded run and a clustered fault run
  each produce one merged artifact whose critical path crosses the
  shard/controller boundary, with the dataplane bit-identical whether
  tracing is on or off.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import ZenPlatform
from repro.netem import Topology
from repro.telemetry import Telemetry, Tracer
from repro.trace import (
    SHARD_ID_STRIDE,
    FlightRecorder,
    TraceArtifact,
    critical_path,
    render_critical_path,
    render_tree,
    shard_of_id,
)
from repro.workload import WorkloadSpec


# ----------------------------------------------------------------------
# Span trees on the tracer
# ----------------------------------------------------------------------
class TestSpanTree:
    def test_span_ids_are_unique_and_parent_links_stick(self):
        tr = Tracer()
        tid = tr.start_trace("t")
        root = tr.record(tid, "a", "host")
        child = tr.record(tid, "b", "link", parent=root)
        grand = tr.record(tid, "c", "dataplane", parent=child)
        spans = tr.spans(tid)
        assert len({s.span_id for s in spans}) == 3
        assert spans[1].parent == root
        assert spans[2].parent == child
        assert grand != child != root

    def test_id_base_offsets_both_trace_and_span_ids(self):
        tr = Tracer(id_base=2 * SHARD_ID_STRIDE)
        tid = tr.start_trace("shard2")
        sid = tr.record(tid, "x", "shard")
        assert shard_of_id(tid) == 2
        assert shard_of_id(sid) == 2

    def test_end_span_moves_the_end_time(self):
        clock = [0.0]
        tr = Tracer(clock=lambda: clock[0])
        tid = tr.start_trace()
        sid = tr.record(tid, "work", "app")
        clock[0] = 1.5
        tr.end_span(tid, sid)
        assert tr.spans(tid)[0].end == 1.5
        tr.end_span(tid, sid, end=2.0)
        assert tr.spans(tid)[0].end == 2.0

    def test_adopt_foreign_bypasses_sampler_but_honours_cap(self):
        tr = Tracer(sample_every=1000, max_traces=2)
        assert tr.adopt_foreign(SHARD_ID_STRIDE + 7)
        assert tr.adopt_foreign(SHARD_ID_STRIDE + 7)  # idempotent
        assert tr.record(SHARD_ID_STRIDE + 7, "rx", "shard") is not None
        assert tr.adopt_foreign(SHARD_ID_STRIDE + 8)
        assert not tr.adopt_foreign(SHARD_ID_STRIDE + 9)  # full
        assert tr.dropped == 1

    def test_on_span_hook_sees_every_span(self):
        tr = Tracer()
        seen = []
        tr.on_span = seen.append
        tid = tr.start_trace()
        tr.record(tid, "a", "host")
        tr.record(tid, "b", "link")
        assert [s.name for s in seen] == ["a", "b"]


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def _span(sid, name, stage, start, end, parent=None):
    return {"span_id": sid, "parent": parent, "name": name,
            "stage": stage, "start": start, "end": end, "attrs": {}}


class TestCriticalPath:
    def test_walks_parent_chain_from_latest_end(self):
        trace = {"id": 1, "label": "x", "spans": [
            _span(1, "root", "fault", 0.0, 0.0),
            _span(2, "detect", "cluster", 0.0, 0.05, parent=1),
            _span(3, "elect", "cluster", 0.05, 0.05, parent=2),
            _span(4, "resync", "cluster", 0.05, 0.07, parent=3),
            _span(5, "sibling", "cluster", 0.0, 0.01, parent=1),
        ]}
        path = critical_path(trace)
        assert [s["name"] for s in path["stages"]] == [
            "root", "detect", "elect", "resync"]
        assert path["total"] == pytest.approx(0.07)
        # Elapsed telescopes to the total.
        assert sum(s["elapsed"] for s in path["stages"]) == \
            pytest.approx(path["total"])
        assert path["by_stage"]["cluster"] == pytest.approx(0.07)

    def test_flat_prefix_is_stitched_in_time_order(self):
        trace = {"id": 2, "label": "", "spans": [
            _span(1, "host.tx", "host", 0.0, 0.0),
            _span(2, "link", "link", 0.0, 0.002),
            _span(3, "dispatch", "controller", 0.002, 0.002),
            _span(4, "app", "app", 0.002, 0.004, parent=3),
        ]}
        names = [s["name"] for s in critical_path(trace)["stages"]]
        assert names == ["host.tx", "link", "dispatch", "app"]

    def test_empty_trace_yields_empty_path(self):
        path = critical_path({"id": 3, "label": "", "spans": []})
        assert path["total"] == 0.0
        assert path["stages"] == []

    def test_renderers_produce_ascii(self):
        trace = {"id": 9, "label": "demo", "spans": [
            _span(1, "root", "fault", 0.0, 0.0),
            _span(2, "child", "cluster", 0.0, 0.05, parent=1),
        ]}
        tree = render_tree(trace)
        assert "trace #9" in tree and "`- child" in tree
        table = render_critical_path(critical_path(trace))
        assert "critical path" in table and "attribution" in table


# ----------------------------------------------------------------------
# TraceArtifact
# ----------------------------------------------------------------------
class TestTraceArtifact:
    def test_round_trip_and_digest_stability(self, tmp_path):
        tr = Tracer()
        tid = tr.start_trace("t")
        tr.record(tid, "a", "host")
        art = TraceArtifact.from_tracer(tr, meta={"seed": 7})
        path = tmp_path / "trace.json"
        art.save(str(path))
        back = TraceArtifact.load(str(path))
        assert back.digest == art.digest
        assert back.meta["seed"] == 7
        assert back.trace(tid)["spans"][0]["name"] == "a"

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            TraceArtifact.load(str(path))

    def test_merge_unions_split_traces_across_shards(self):
        # Shard 0 started the trace, shard 1 adopted it: same id, two
        # half span-trees.
        tid = 5
        a = TraceArtifact([{"id": tid, "label": "origin", "spans": [
            _span(1, "host.tx", "host", 0.0, 0.0),
            _span(2, "boundary_tx", "shard", 0.0, 0.001),
        ]}])
        b = TraceArtifact([{"id": tid, "label": "", "spans": [
            _span(SHARD_ID_STRIDE + 1, "boundary_rx", "shard",
                  0.001, 0.001, parent=2),
            _span(SHARD_ID_STRIDE + 2, "host.rx", "host", 0.002, 0.002),
        ]}])
        merged = TraceArtifact.merge([a, b])
        trace = merged.trace(tid)
        assert trace["label"] == "origin"
        assert [s["name"] for s in trace["spans"]] == [
            "host.tx", "boundary_tx", "boundary_rx", "host.rx"]
        assert merged.shards_of(trace) == [0, 1]
        assert merged.meta["merged_from"] == 2

    def test_longest_picks_widest_extent(self):
        art = TraceArtifact([
            {"id": 1, "label": "short",
             "spans": [_span(1, "a", "host", 0.0, 0.1)]},
            {"id": 2, "label": "long",
             "spans": [_span(2, "b", "host", 0.0, 0.5)]},
        ])
        assert art.longest()["id"] == 2


# ----------------------------------------------------------------------
# Stash leak + cross-epoch adoption (the PR-10 satellites)
# ----------------------------------------------------------------------
def _reactive_platform(telemetry=None, seed=0):
    topo = Topology.linear(3, hosts_per_switch=1, bandwidth_bps=1e9)
    return ZenPlatform(topo, profile="reactive", seed=seed,
                       telemetry=telemetry)


class TestStashScope:
    def test_epoch_change_prunes_scoped_entries(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        tracer = tel.tracer
        channel = platform.net.channel("s1")
        tid = tracer.start_trace("doomed")
        tracer.stash(("packet_in", 1, b"frame"), tid, scope=channel)
        assert tracer.stash_size == 1
        channel.disconnect()
        assert tracer.stash_size == 0
        assert tracer.stash_pruned == 1
        # The adopt after the epoch change finds nothing — the stale id
        # cannot leak into a new connection's identical frame.
        adopted, _ = tracer.adopt(("packet_in", 1, b"frame"))
        assert adopted is None
        # Surfaced as a metric, per channel.
        assert tel.metrics.get("trace_stash_pruned_total", "s1") == 1

    def test_pre_reconnect_frame_does_not_adopt_into_new_epoch(self):
        """A frame serialised before a flap must not hand its trace to
        a byte-identical frame sent after the reconnect."""
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        tracer = tel.tracer
        channel = platform.net.channel("s1")
        key = ("packet_in", 2, b"same-bytes")
        old = tracer.start_trace("old-epoch")
        tracer.stash(key, old, scope=channel)
        channel.disconnect()
        channel.connect()
        new = tracer.start_trace("new-epoch")
        tracer.stash(key, new, scope=channel)
        adopted, _ = tracer.adopt(key)
        assert adopted == new  # the old-epoch id was pruned, not FIFO'd
        assert tracer.stash_pruned == 1

    def test_flapped_run_leaves_no_stash_residue(self):
        """End-to-end leak regression: channel flaps mid-traffic leave
        the stash empty once the run settles."""
        from repro.faults import FaultSchedule

        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        hosts = list(platform.net.hosts.values())
        for a in hosts:
            for b in hosts:
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        sched = FaultSchedule(platform.net)
        now = platform.sim.now
        for k in range(3):
            sched.channel_flap(now + 0.2 + 0.4 * k, "s2", down_for=0.2,
                               period=0.4, count=1)
        for i, host in enumerate(hosts):
            for k in range(5):
                platform.sim.schedule_at(
                    now + 0.1 + 0.15 * k, host.send_udp,
                    hosts[(i + 1) % len(hosts)].ip, 7, 7, b"x")
        platform.run(4.0)
        assert tel.tracer.stash_size == 0

    def test_null_tracer_stash_api_is_silent(self):
        from repro.telemetry import NULL_TRACER

        NULL_TRACER.stash("k", 1, scope=object())
        assert NULL_TRACER.prune_scope(object()) == 0
        assert NULL_TRACER.adopt("k") == (None, 0.0)
        assert not NULL_TRACER.adopt_foreign(5)


class TestEvictionThroughOpenMetrics:
    def test_dropped_spans_surface_in_the_export(self):
        """Satellite 3: retention pressure must be visible end-to-end —
        tracer counters AND the OpenMetrics export line."""
        from repro.obs import render_openmetrics

        tel = Telemetry(max_traces=4, max_spans=24)
        platform = _reactive_platform(tel).start()
        assert platform.ping_all(count=2, settle=8.0) > 0
        tracer = tel.tracer
        assert tracer.dropped > 0          # max_traces pressure
        assert tracer.dropped_spans > 0    # span-ring eviction
        assert tracer.trace_count <= 4
        text = render_openmetrics(tel.metrics)
        line = [ln for ln in text.splitlines()
                if ln.startswith("telemetry_trace_dropped_spans_total ")]
        assert line, "dropped-spans counter missing from the export"
        assert float(line[0].split()[-1]) == float(tracer.dropped_spans)


# ----------------------------------------------------------------------
# Controller span trees
# ----------------------------------------------------------------------
class TestControlPlaneSpanTree:
    def test_packet_in_dispatch_app_flowmod_chain(self):
        tel = Telemetry()
        platform = _reactive_platform(tel).start()
        assert platform.ping_all(count=1, settle=8.0) == 1.0
        spans = next(
            spans for _tid, _label, spans in tel.tracer.traces()
            if any(s.name == "flow.install" for s in spans))
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        dispatches = by_name["controller.dispatch"]
        assert dispatches
        pin_ids = {s.span_id for s in spans
                   if s.name == "channel.packet_in"}
        # Every dispatch hangs off a packet-in arrival span.
        assert all(d.parent in pin_ids for d in dispatches)
        apps = [s for s in spans if s.stage == "app"]
        dispatch_ids = {d.span_id for d in dispatches}
        app_ids = {s.span_id for s in apps}
        assert apps and all(s.parent in dispatch_ids | app_ids
                            for s in apps)
        installs = [s for s in spans if s.name == "flow.install"]
        assert installs
        assert all(s.parent in app_ids for s in installs)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def _tel(self):
        return Telemetry()

    def test_rings_are_bounded_per_stage(self):
        tel = self._tel()
        rec = FlightRecorder(tel, capacity=4)
        tid = tel.tracer.start_trace("t")
        for i in range(10):
            tel.tracer.record(tid, f"s{i}", "host")
        assert len(rec.rings["host"]) == 4
        assert rec.spans_seen == 10
        art = rec.snapshot()
        assert art.span_count == 4  # only the ring tail

    def test_trigger_captures_and_max_dumps_suppresses(self):
        tel = self._tel()
        rec = FlightRecorder(tel, max_dumps=2)
        tid = tel.tracer.start_trace("t")
        tel.tracer.record(tid, "a", "host")
        assert rec.trigger("violation", "x", 1.0) is not None
        assert rec.trigger("alert", "y", 2.0) is not None
        assert rec.trigger("alert", "z", 3.0) is None
        assert len(rec.dumps) == 2
        assert rec.dumps_suppressed == 1
        assert rec.dumps[0].triggers[0]["kind"] == "violation"

    def test_monitor_violation_triggers_a_dump(self):
        """An invariant going red dumps the rings, chained after any
        existing on_record hook."""
        from repro.check import InvariantMonitor

        tel = self._tel()
        platform = _reactive_platform(tel).start()
        rec = FlightRecorder(tel)
        monitor = InvariantMonitor(platform.net)
        seen = []
        monitor.on_record = seen.append           # pre-existing hook
        rec.watch_monitor(monitor)
        platform.ping_all(count=1, settle=8.0)
        # Poison the dataplane: plant a high-priority flow out a link,
        # fail that link, recheck before the control plane can react —
        # dead-port blackhole, red verdict.
        from repro.dataplane import FlowEntry, Match, Output

        net = platform.net
        net.switches["s1"].install_flow(FlowEntry(
            Match(eth_dst=net.hosts["h2"].mac),
            [Output(net.port_of("s1", "s2"))], priority=900))
        net.fail_link("s1", "s2")
        result = monitor.recheck("test-poison")
        assert not result.ok
        assert rec.dumps, "red verdict did not dump the rings"
        assert rec.dumps[0].triggers[0]["kind"] == "violation"
        assert seen, "chained hook was replaced, not chained"

    def test_snapshot_is_deterministic(self):
        def build():
            tel = self._tel()
            rec = FlightRecorder(tel)
            tid = tel.tracer.start_trace("t")
            tel.tracer.record(tid, "a", "host")
            tel.tracer.record(tid, "b", "link")
            return rec.snapshot().digest

        assert build() == build()


# ----------------------------------------------------------------------
# Cluster handover chain + SLO exemplars
# ----------------------------------------------------------------------
def _cluster(tel=None, seed=0):
    from repro.cluster import ZenCluster

    topo = Topology.ring(4, hosts_per_switch=1, bandwidth_bps=1e9)
    return ZenCluster(topo, controllers=3, profile="reactive",
                      seed=seed, telemetry=tel)


def _run_cluster_crash(tel, seed=0):
    from repro.faults import FaultSchedule

    platform = _cluster(tel, seed=seed).start()
    net = platform.net
    hosts = list(net.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    for i, host in enumerate(hosts):
        host.send_udp(hosts[(i + 1) % len(hosts)].ip, 7, 7, b"warm")
    platform.run(1.0)
    sched = FaultSchedule(net)
    sched.attach_cluster(platform.cluster)
    victim = platform.cluster.master_of(net.switches["s1"].dpid)
    sched.controller_crash(net.sim.now + 0.5, victim,
                           restart_after=0.4)
    platform.run(3.0)
    return platform, sched


class TestClusterHandoverTrace:
    def test_handover_chain_is_one_span_tree(self):
        tel = Telemetry()
        platform, _sched = _run_cluster_crash(tel)
        fault_traces = [
            (tid, label, spans) for tid, label, spans in
            tel.tracer.traces()
            if label.startswith("fault:controller_crash")
        ]
        assert fault_traces
        tid, _label, spans = fault_traces[0]
        names = {s.name for s in spans}
        assert {"fault.controller_crash", "bus.death_detect",
                "cluster.election", "cluster.term_bump",
                "cluster.role_grant", "cluster.resync",
                "cluster.failover_complete"} <= names
        # The chain is parented, not flat: resync's ancestry walks back
        # to the fault root.
        by_id = {s.span_id: s for s in spans}
        resync = next(s for s in spans if s.name == "cluster.resync")
        hop, chain = resync, []
        while hop.parent is not None:
            hop = by_id[hop.parent]
            chain.append(hop.name)
        assert chain[-1] == "fault.controller_crash"
        assert "bus.death_detect" in chain
        # Critical path crosses the controller boundary: detection on
        # the bus, recovery on the surviving master.
        art = TraceArtifact.from_tracer(tel.tracer)
        path = critical_path(art.trace(tid))
        path_names = [s["name"] for s in path["stages"]]
        assert path_names[0] == "fault.controller_crash"
        assert "bus.death_detect" in path_names
        assert path_names[-1] in ("cluster.resync",
                                  "cluster.failover_complete")
        assert path["total"] > 0

    def test_convergence_slo_carries_trace_exemplars(self):
        from repro.faults import FaultSchedule
        from repro.obs import ObsPlane
        from repro.obs.slo import ConvergenceSLO

        tel = Telemetry(profile=False)
        platform = _reactive_platform(tel).start()
        slo = ConvergenceSLO("conv", 5.0,
                             open_kinds=("switch_crash",),
                             close_kinds=("resync_done",))
        plane = ObsPlane(platform, interval=0.05, slos=[slo])
        sched = FaultSchedule(platform.net)
        plane.watch_faults(sched)
        platform.ping_all(count=1, settle=8.0)
        sched.switch_crash(platform.sim.now + 0.1, "s2",
                           restart_after=0.3)
        platform.run(3.0)
        plane.finish()
        assert slo.measurements, "crash never reconverged"
        assert slo.exemplars[0] is not None
        labels = dict(
            (tid, label) for tid, label, _ in tel.tracer.traces())
        assert labels[slo.exemplars[0]].startswith("fault:switch_crash")
        doc = plane.report.to_dict() if hasattr(plane, "report") else None
        if doc is not None:
            conv = next(s for s in doc["slos"] if s["name"] == "conv")
            assert conv["measurements"][0]["trace_id"] == \
                slo.exemplars[0]

    def test_cluster_dataplane_bit_identical_with_tracing(self):
        """Acceptance: seeded clustered fault runs are bit-identical
        with the trace plane on, off, or telemetry disabled."""
        from repro.cluster.platform import dataplane_digest

        def digest(tel):
            platform, _ = _run_cluster_crash(tel, seed=11)
            return dataplane_digest(platform.net)

        base = digest(None)
        assert digest(Telemetry()) == base
        assert digest(Telemetry(enabled=False)) == base


# ----------------------------------------------------------------------
# Sharded runs: trace propagation + bit-identity
# ----------------------------------------------------------------------
def _shard_spec(seed=101):
    return WorkloadSpec(
        f"trace-fuzz-{seed}",
        topology={"family": "fat_tree", "size": 4},
        seed=seed,
        duration=1.2,
        traffic=[
            {"kind": "flows", "rate": 40.0,
             "sizes": {"dist": "pareto", "mean": 6_000, "alpha": 1.5},
             "start": 0.2, "duration": 0.8},
        ],
    )


class TestShardedTracePlane:
    def test_trace_crosses_the_boundary_and_digest_is_unchanged(self):
        from repro.sim.shard import run_sharded

        spec = _shard_spec()
        off = run_sharded(spec, shards=4, processes=False)
        on = run_sharded(spec, shards=4, processes=False, trace=True)
        assert on.digest == off.digest  # tracing never moves the needle
        art = on.trace_artifact
        assert art is not None and art.traces
        crossing = [t for t in art.traces
                    if len(art.shards_of(t)) > 1]
        assert crossing, "no trace crossed a shard boundary"
        trace = crossing[0]
        names = [s["name"] for s in trace["spans"]]
        assert "shard.boundary_tx" in names
        assert "shard.boundary_rx" in names
        rx = next(s for s in trace["spans"]
                  if s["name"] == "shard.boundary_rx")
        tx = next(s for s in trace["spans"]
                  if s["name"] == "shard.boundary_tx")
        assert rx["parent"] == tx["span_id"]
        assert shard_of_id(rx["span_id"]) != shard_of_id(tx["span_id"])
        # The critical path includes spans minted by both shards.
        path = critical_path(trace)
        shards_on_path = {shard_of_id(s["span_id"])
                          for s in path["stages"]}
        assert len(shards_on_path) > 1

    def test_merged_artifact_is_identical_across_coordinators(self):
        from repro.sim.shard import run_sharded

        spec = _shard_spec(seed=202)
        seq = run_sharded(spec, shards=2, processes=False, trace=True)
        proc = run_sharded(spec, shards=2, processes=True, trace=True)
        assert proc.digest == seq.digest
        assert proc.trace_artifact.digest == seq.trace_artifact.digest

    def test_trace_out_writes_a_loadable_artifact(self, tmp_path):
        from repro.sim.shard import run_sharded

        spec = _shard_spec(seed=303)
        path = tmp_path / "sharded-trace.json"
        result = run_sharded(spec, shards=2, processes=False,
                             trace=True, trace_out=str(path))
        back = TraceArtifact.load(str(path))
        assert back.digest == result.trace_artifact.digest
        assert back.meta["shards"] == result.effective_shards


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestTraceCLI:
    def test_report_platform_run(self, capsys):
        code = cli_main(["trace", "report", "--topology", "linear",
                         "--size", "3", "--duration", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path of trace" in out
        assert "attribution" in out

    def test_cluster_dump_then_critical_path(self, tmp_path, capsys):
        """The CI smoke path: clustered fault run, triggered
        flight-recorder dump, offline critical-path analysis."""
        out_path = tmp_path / "cluster-trace.json"
        code = cli_main(["trace", "dump", "--controllers", "3",
                         "--fault", "controller", "--flight",
                         "--duration", "2.5",
                         "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "flight-recorder dump captured" in out
        assert out_path.exists()
        code = cli_main(["trace", "critical-path", str(out_path),
                         "--select", "fault", "--tree"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault.controller_crash" in out
        assert "bus.death_detect" in out
        assert "critical path of trace" in out

    def test_sharded_report(self, capsys):
        code = cli_main(["trace", "report", "--shards", "2",
                         "--scenario", "dc-heavy-tail",
                         "--duration", "1.0", "--shard-sequential"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cross a shard boundary" in out

    def test_critical_path_needs_an_artifact(self):
        with pytest.raises(SystemExit):
            cli_main(["trace", "critical-path"])
