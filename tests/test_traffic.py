"""Workload generator and sink tests."""

import pytest

from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.netem import (
    CBRStream,
    FlowGenerator,
    FlowSink,
    Network,
    RequestLoad,
    Topology,
    pareto_sizes,
)
from repro.errors import TopologyError
from repro.packet import UDP
from repro.sim import Simulator


@pytest.fixture
def net():
    network = Network(Topology.single(3, bandwidth_bps=100e6),
                      miss_behaviour="drop")
    for name in network.switches:
        network.switch(name).install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
        )
    # Pre-seed ARP so generators measure dataplane behaviour only.
    hosts = list(network.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    return network


class TestCBRStream:
    def test_rate_is_respected(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=1e6, packet_size=1000,
                  duration=2.0)
        net.run(2.5)
        # 1 Mb/s for 2 s = 250 packets of 1000 B.
        assert sink.total_bytes == pytest.approx(250_000, rel=0.02)

    def test_stop_halts_stream(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        stream = CBRStream(h1, h2.ip, rate_bps=1e6, duration=10.0)
        net.run(1.0)
        stream.stop()
        bytes_at_stop = sink.total_bytes
        net.run(2.0)
        assert sink.total_bytes == bytes_at_stop

    def test_validation(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        with pytest.raises(TopologyError):
            CBRStream(h1, h2.ip, rate_bps=0)
        with pytest.raises(TopologyError):
            CBRStream(h1, h2.ip, rate_bps=1e6, packet_size=4)


class TestFlowSink:
    def test_flow_completion_recorded(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        done = []
        sink.on_flow_complete = done.append
        gen = FlowGenerator(
            net.sim, [h1, h2], arrival_rate=50.0,
            size_source=iter(lambda: 5000, None),
            flow_rate_bps=10e6, duration=1.0,
            pair_picker=lambda: (h1, h2),
        )
        net.run(3.0)
        assert gen.flows_started
        assert done
        record = done[0]
        assert record.completed
        assert record.bytes_received >= record.size
        assert record.fct > 0

    def test_short_payload_ignored(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        h1.send_udp(h2.ip, 1, 9000, b"tiny")
        net.run(1.0)
        assert sink.flows == {}


class TestFlowGenerator:
    def test_poisson_arrivals_scale_with_rate(self):
        def count_flows(rate):
            network = Network(Topology.single(4, bandwidth_bps=1e9),
                              miss_behaviour="drop", seed=5)
            for name in network.switches:
                network.switch(name).install_flow(
                    FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
                )
            hosts = list(network.hosts.values())
            for a in hosts:
                for b in hosts:
                    if a is not b:
                        a.add_static_arp(b.ip, b.mac)
            gen = FlowGenerator(
                network.sim, hosts, arrival_rate=rate,
                size_source=pareto_sizes(network.sim.fork_rng(), 2000),
                duration=5.0,
            )
            network.run(6.0)
            return len(gen.flows_started)

        low, high = count_flows(10.0), count_flows(40.0)
        assert high > 2 * low

    def test_pareto_sizes_heavy_tailed(self):
        sim = Simulator(seed=9)
        gen = pareto_sizes(sim.fork_rng(), mean=10_000, shape=1.2)
        samples = [next(gen) for _ in range(3000)]
        assert min(samples) >= 64
        avg = sum(samples) / len(samples)
        assert 3_000 < avg < 60_000  # heavy tail: wide tolerance
        assert max(samples) > 10 * avg  # elephants exist

    def test_pareto_shape_validated(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            next(pareto_sizes(sim.fork_rng(), 100, shape=1.0))

    def test_generator_needs_two_hosts(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            FlowGenerator(sim, [], arrival_rate=1.0, size_source=iter([]))


class TestRequestLoad:
    def test_requests_answered_by_simple_responder(self, net):
        h1, h2, h3 = (net.host(n) for n in ("h1", "h2", "h3"))

        def responder(pkt, host):
            udp = pkt[UDP]
            from repro.packet import IPv4
            host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port,
                          b"response")

        h3.bind_udp(RequestLoad.REQUEST_PORT, responder)
        load = RequestLoad(net.sim, [h1, h2], h3.ip,
                           request_rate=100.0, duration=1.0)
        net.run(3.0)
        assert load.sent > 20
        assert load.completed == load.sent
        assert load.timeouts == 0
        assert all(rt > 0 for rt in load.response_times)

    def test_unanswered_requests_time_out(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        load = RequestLoad(net.sim, [h1], h2.ip, request_rate=50.0,
                           duration=0.5, timeout=1.0)
        net.run(3.0)
        assert load.completed == 0
        assert load.timeouts == load.sent > 0
