"""Workload generator and sink tests."""

import random

import pytest

from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.netem import (
    CBRStream,
    FlowGenerator,
    FlowSink,
    Network,
    RequestLoad,
    Topology,
    pareto_sizes,
)
from repro.netem.traffic import allocate_flow_id, send_framed_flow
from repro.errors import TopologyError
from repro.packet import IPv4, UDP
from repro.sim import Simulator


@pytest.fixture
def net():
    network = Network(Topology.single(3, bandwidth_bps=100e6),
                      miss_behaviour="drop")
    for name in network.switches:
        network.switch(name).install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
        )
    # Pre-seed ARP so generators measure dataplane behaviour only.
    hosts = list(network.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    return network


class TestCBRStream:
    def test_rate_is_respected(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        CBRStream(h1, h2.ip, rate_bps=1e6, packet_size=1000,
                  duration=2.0)
        net.run(2.5)
        # 1 Mb/s for 2 s = 250 packets of 1000 B.
        assert sink.total_bytes == pytest.approx(250_000, rel=0.02)

    def test_stop_halts_stream(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        stream = CBRStream(h1, h2.ip, rate_bps=1e6, duration=10.0)
        net.run(1.0)
        stream.stop()
        bytes_at_stop = sink.total_bytes
        net.run(2.0)
        assert sink.total_bytes == bytes_at_stop

    def test_validation(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        with pytest.raises(TopologyError):
            CBRStream(h1, h2.ip, rate_bps=0)
        with pytest.raises(TopologyError):
            CBRStream(h1, h2.ip, rate_bps=1e6, packet_size=4)

    def test_exact_packet_count(self, net):
        # 1 Mb/s for 2 s at 1000 B/packet is exactly 250 packets; the
        # tick landing on the end instant must not send a 251st.
        h1, h2 = net.host("h1"), net.host("h2")
        stream = CBRStream(h1, h2.ip, rate_bps=1e6, packet_size=1000,
                           duration=2.0)
        net.run(3.0)
        assert stream.packets_sent == 250


class TestFlowSink:
    def test_flow_completion_recorded(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        done = []
        sink.on_flow_complete = done.append
        gen = FlowGenerator(
            net.sim, [h1, h2], arrival_rate=50.0,
            size_source=iter(lambda: 5000, None),
            flow_rate_bps=10e6, duration=1.0,
            pair_picker=lambda: (h1, h2),
        )
        net.run(3.0)
        assert gen.flows_started
        assert done
        record = done[0]
        assert record.completed
        assert record.bytes_received >= record.size
        assert record.fct > 0

    def test_short_payload_ignored(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        h1.send_udp(h2.ip, 1, 9000, b"tiny")
        net.run(1.0)
        assert sink.flows == {}

    def test_flow_completes_exactly_on_last_packet(self, net):
        # 985 goodput bytes in 1000-byte packets = 2 chunks (984 + 1).
        # Counting the 16 framing bytes per packet (the old accounting)
        # would cross the 985-byte threshold on packet one and record a
        # zero FCT; goodput accounting needs both packets.
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        flow_id = allocate_flow_id(net.sim)
        packets = send_framed_flow(net.sim, h1, h2.ip, flow_id,
                                   size=985, src_port=30000,
                                   dst_port=9000, packet_size=1000)
        assert packets == 2
        net.run(1.0)
        record = sink.flows[flow_id]
        assert record.completed
        assert record.packets_received == 2
        assert record.bytes_received == 985
        assert record.fct > 0  # spans the inter-packet pacing gap

    def test_goodput_counted_not_wire_bytes(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        sink = FlowSink(h2, 9000)
        flow_id = allocate_flow_id(net.sim)
        send_framed_flow(net.sim, h1, h2.ip, flow_id, size=2952,
                         src_port=30000, dst_port=9000, packet_size=1000)
        net.run(1.0)
        record = sink.flows[flow_id]
        assert record.bytes_received == 2952      # goodput, exact
        assert sink.total_bytes == 2952 + 3 * 16  # wire bytes keep framing


class TestFlowIdAllocation:
    def test_ids_start_fresh_per_simulator(self, net):
        # Flow ids come from the simulator, not interpreter-global
        # class state: a second simulation in the same process must see
        # the same id sequence, or seeded runs stop being reproducible.
        first = allocate_flow_id(net.sim)
        other = Network(Topology.single(3, bandwidth_bps=100e6),
                        miss_behaviour="drop")
        assert allocate_flow_id(other.sim) == first

    def test_namespaces_are_independent(self):
        sim = Simulator()
        assert sim.next_id("flow") == 1
        assert sim.next_id("flow") == 2
        assert sim.next_id("token") == 1

    def test_two_generators_sharing_a_sink_never_collide(self, net):
        # Two generators used to mint ids from the same fixed starting
        # point, so flows aimed at one sink silently merged records.
        h1, h2, h3 = (net.host(n) for n in ("h1", "h2", "h3"))
        sink = FlowSink(h3, 9000)
        gen_a = FlowGenerator(
            net.sim, [h1, h3], arrival_rate=40.0,
            size_source=iter(lambda: 2000, None), duration=1.0,
            pair_picker=lambda: (h1, h3),
        )
        gen_b = FlowGenerator(
            net.sim, [h2, h3], arrival_rate=40.0,
            size_source=iter(lambda: 2000, None), duration=1.0,
            pair_picker=lambda: (h2, h3),
        )
        net.run(3.0)
        started = gen_a.flows_started + gen_b.flows_started
        assert len(started) > 10
        ids = [r.flow_id for r in started]
        assert len(set(ids)) == len(ids)
        assert len(sink.flows) == len(ids)

    def test_cbr_ids_share_the_flow_namespace(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        stream = CBRStream(h1, h2.ip, rate_bps=1e6, duration=0.1)
        assert allocate_flow_id(net.sim) == stream.flow_id + 1


class _ScriptedRng:
    """random()/sample stand-in yielding a scripted sequence."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)


class TestFlowGenerator:
    def test_poisson_arrivals_scale_with_rate(self):
        def count_flows(rate):
            network = Network(Topology.single(4, bandwidth_bps=1e9),
                              miss_behaviour="drop", seed=5)
            for name in network.switches:
                network.switch(name).install_flow(
                    FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
                )
            hosts = list(network.hosts.values())
            for a in hosts:
                for b in hosts:
                    if a is not b:
                        a.add_static_arp(b.ip, b.mac)
            gen = FlowGenerator(
                network.sim, hosts, arrival_rate=rate,
                size_source=pareto_sizes(network.sim.fork_rng(), 2000),
                duration=5.0,
            )
            network.run(6.0)
            return len(gen.flows_started)

        low, high = count_flows(10.0), count_flows(40.0)
        assert high > 2 * low

    def test_pareto_sizes_heavy_tailed(self):
        sim = Simulator(seed=9)
        gen = pareto_sizes(sim.fork_rng(), mean=10_000, shape=1.2)
        samples = [next(gen) for _ in range(3000)]
        assert min(samples) >= 64
        avg = sum(samples) / len(samples)
        assert 3_000 < avg < 60_000  # heavy tail: wide tolerance
        assert max(samples) > 10 * avg  # elephants exist

    def test_pareto_shape_validated(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            next(pareto_sizes(sim.fork_rng(), 100, shape=1.0))

    def test_pareto_survives_a_zero_uniform_draw(self):
        # random() is uniform on [0, 1): an exact 0.0 is legal and used
        # to raise ZeroDivisionError mid-experiment.  The generator
        # must redraw instead.
        gen = pareto_sizes(_ScriptedRng([0.0, 0.0, 0.5, 0.25]), 10_000)
        first, second = next(gen), next(gen)
        assert first >= 64 and second >= 64
        assert second > first  # smaller uniform draw, bigger flow

    def test_pareto_10k_seeded_draws_finite_with_sane_mean(self):
        rng = random.Random(1234)
        gen = pareto_sizes(rng, mean=10_000, shape=1.5)
        samples = [next(gen) for _ in range(10_000)]
        assert all(isinstance(s, int) and s >= 64 for s in samples)
        avg = sum(samples) / len(samples)
        # Heavy tail, so generous bounds — but the mean must be finite
        # and in the right decade.
        assert 4_000 < avg < 40_000

    def test_generator_needs_two_hosts(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            FlowGenerator(sim, [], arrival_rate=1.0, size_source=iter([]))


class TestRequestLoad:
    def test_requests_answered_by_simple_responder(self, net):
        h1, h2, h3 = (net.host(n) for n in ("h1", "h2", "h3"))

        def responder(pkt, host):
            udp = pkt[UDP]
            from repro.packet import IPv4
            host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port,
                          b"response")

        h3.bind_udp(RequestLoad.REQUEST_PORT, responder)
        load = RequestLoad(net.sim, [h1, h2], h3.ip,
                           request_rate=100.0, duration=1.0)
        net.run(3.0)
        assert load.sent > 20
        assert load.completed == load.sent
        assert load.timeouts == 0
        assert all(rt > 0 for rt in load.response_times)

    def test_unanswered_requests_time_out(self, net):
        h1, h2 = net.host("h1"), net.host("h2")
        load = RequestLoad(net.sim, [h1], h2.ip, request_rate=50.0,
                           duration=0.5, timeout=1.0)
        net.run(3.0)
        assert load.completed == 0
        assert load.timeouts == load.sent > 0

    def test_refuses_to_clobber_an_existing_udp_handler(self, net):
        # ``client.on_udp = self._on_response`` used to silently
        # replace whatever handler was already installed, breaking the
        # earlier consumer without a trace.
        h1, h2 = net.host("h1"), net.host("h2")
        h1.on_udp = lambda pkt, host: None
        with pytest.raises(TopologyError):
            RequestLoad(net.sim, [h1], h2.ip, request_rate=10.0)

    def test_port_wrap_does_not_expire_fresh_requests(self, net):
        # Regression: pending requests were keyed by (client, port).
        # After the ephemeral range wrapped, a *stale* timeout popped
        # the *fresh* request on the reused port — counting a timeout
        # AND orphaning the real response.  Tokens are unique, so the
        # stale expiry can only claim its own request.
        h1, h2 = net.host("h1"), net.host("h2")
        seen = []

        def responder(pkt, host):
            seen.append(pkt)
            if len(seen) == 1:
                return  # drop the first request: it must time out
            udp = pkt[UDP]
            host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port,
                          b"response")

        h2.bind_udp(RequestLoad.REQUEST_PORT, responder)
        # Rate ~0 parks the Poisson arrival far in the future; the test
        # drives sends by hand to force the port reuse.
        load = RequestLoad(net.sim, [h1], h2.ip, request_rate=1e-9,
                           duration=0.0, timeout=0.5)
        net.sim.schedule(0.0, lambda: load._send_one(h1))

        def resend_on_same_port():
            load._next_port = 40000  # the wrapped range reuses port 40000
            load._send_one(h1)

        net.sim.schedule(0.3, resend_on_same_port)
        net.run(2.0)
        assert load.sent == 2
        assert load.timeouts == 1    # only the genuinely dropped request
        assert load.completed == 1   # the fresh one's response counted


class TestSeededDeterminism:
    def _flow_run(self, seed):
        network = Network(Topology.single(4, bandwidth_bps=1e9),
                          miss_behaviour="drop", seed=seed)
        for name in network.switches:
            network.switch(name).install_flow(
                FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
            )
        hosts = list(network.hosts.values())
        for a in hosts:
            for b in hosts:
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        sink = FlowSink(hosts[0], 9000)
        gen = FlowGenerator(
            network.sim, hosts, arrival_rate=30.0,
            size_source=pareto_sizes(network.sim.fork_rng(), 5000),
            duration=2.0,
        )
        network.run(4.0)
        return (
            [(r.flow_id, r.src, r.dst, r.size, r.start_time)
             for r in gen.flows_started],
            sorted((f.flow_id, f.fct) for f in sink.completed_flows()),
        )

    def test_flow_generator_rerun_is_bit_identical(self):
        assert self._flow_run(11) == self._flow_run(11)

    def _request_run(self, seed):
        network = Network(Topology.single(3, bandwidth_bps=1e9),
                          miss_behaviour="drop", seed=seed)
        for name in network.switches:
            network.switch(name).install_flow(
                FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
            )
        hosts = list(network.hosts.values())
        for a in hosts:
            for b in hosts:
                if a is not b:
                    a.add_static_arp(b.ip, b.mac)
        h1, h2, h3 = hosts

        def responder(pkt, host):
            udp = pkt[UDP]
            host.send_udp(pkt[IPv4].src, udp.dst_port, udp.src_port,
                          b"response")

        h3.bind_udp(RequestLoad.REQUEST_PORT, responder)
        load = RequestLoad(network.sim, [h1, h2], h3.ip,
                           request_rate=80.0, duration=1.0)
        network.run(3.0)
        return load.sent, load.timeouts, list(load.response_times)

    def test_request_load_rerun_is_bit_identical(self):
        assert self._request_run(13) == self._request_run(13)
