"""Workload plane tests: sizes, generators, specs, runner, suite, CLI."""

import json
import random

import pytest

from repro.cli import main
from repro.dataplane import FlowEntry, Match, Output, PORT_FLOOD
from repro.errors import TopologyError
from repro.netem import FlowSink, Network, Topology
from repro.obs import diff_runs, load_artifact
from repro.workload import (
    DiurnalFlowGenerator,
    IncastGenerator,
    TenantMatrix,
    WorkloadSpec,
    elephant_mice,
    empirical_sizes,
    fixed_sizes,
    library,
    load_spec,
    lognormal_sizes,
    run_suite,
    run_workload,
    size_source_from_spec,
    suite_digest,
    to_check_scenario,
)


def flooded_network(size=4, seed=0):
    network = Network(Topology.single(size, bandwidth_bps=1e9),
                      miss_behaviour="drop", seed=seed)
    for name in network.switches:
        network.switch(name).install_flow(
            FlowEntry(Match(), [Output(PORT_FLOOD)], priority=0)
        )
    hosts = list(network.hosts.values())
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_static_arp(b.ip, b.mac)
    return network, hosts


def tiny_spec(name="tiny", seed=3, **overrides):
    doc = dict(
        name=name,
        topology={"family": "single", "size": 4},
        profile="proactive",
        seed=seed,
        traffic=[{
            "kind": "flows", "rate": 25.0,
            "sizes": {"dist": "fixed", "size": 2000},
            "start": 0.2, "duration": 1.2,
        }],
        settle=1.0,
    )
    doc.update(overrides)
    return WorkloadSpec(**doc)


# ----------------------------------------------------------------------
# Size sources
# ----------------------------------------------------------------------

class TestSizes:
    def test_fixed(self):
        gen = fixed_sizes(4096)
        assert [next(gen) for _ in range(3)] == [4096, 4096, 4096]
        with pytest.raises(TopologyError):
            fixed_sizes(10)

    def test_lognormal_hits_its_linear_mean(self):
        gen = lognormal_sizes(random.Random(7), mean=50_000, sigma=1.0)
        samples = [next(gen) for _ in range(8000)]
        assert all(s >= 64 for s in samples)
        avg = sum(samples) / len(samples)
        assert 35_000 < avg < 70_000

    def test_lognormal_validation(self):
        with pytest.raises(TopologyError):
            next(lognormal_sizes(random.Random(0), mean=-1))
        with pytest.raises(TopologyError):
            next(lognormal_sizes(random.Random(0), mean=100, sigma=0))

    def test_empirical_interpolates_within_the_table(self):
        cdf = [(1000, 0.5), (10_000, 0.9), (100_000, 1.0)]
        gen = empirical_sizes(random.Random(3), cdf)
        samples = [next(gen) for _ in range(4000)]
        assert all(64 <= s <= 100_000 for s in samples)
        small = sum(1 for s in samples if s <= 1000)
        assert 0.4 < small / len(samples) < 0.6

    def test_empirical_validation(self):
        rng = random.Random(0)
        with pytest.raises(TopologyError):
            next(empirical_sizes(rng, []))
        with pytest.raises(TopologyError):
            next(empirical_sizes(rng, [(100, 0.5)]))  # ends below 1.0
        with pytest.raises(TopologyError):
            next(empirical_sizes(rng, [(100, 0.9), (50, 1.0)]))
        with pytest.raises(TopologyError):
            next(empirical_sizes(rng, [(100, 0.9), (200, 0.5)]))

    def test_elephant_mice_mixture(self):
        gen = elephant_mice(random.Random(5), mice_mean=2_000,
                            elephant_mean=500_000, elephant_frac=0.1)
        samples = [next(gen) for _ in range(5000)]
        big = sum(1 for s in samples if s > 50_000)
        assert 0.03 < big / len(samples) < 0.2
        with pytest.raises(TopologyError):
            next(elephant_mice(random.Random(0), elephant_frac=1.5))

    def test_spec_dispatch(self):
        rng = random.Random(1)
        assert next(size_source_from_spec(
            rng, {"dist": "fixed", "size": 777})) == 777
        for doc in ({"dist": "pareto", "mean": 5000},
                    {"dist": "lognormal", "mean": 5000},
                    {"dist": "mix"},
                    {"dist": "empirical", "cdf": [[100, 1.0]]}):
            assert next(size_source_from_spec(rng, doc)) >= 64
        with pytest.raises(TopologyError):
            size_source_from_spec(rng, {"dist": "zipf"})


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

class TestIncast:
    def test_periodic_fanin_bursts(self):
        net, hosts = flooded_network(size=6, seed=2)
        aggregator = hosts[-1]
        sink = FlowSink(aggregator, 9000)
        gen = IncastGenerator(net.sim, hosts[:-1], aggregator,
                              bytes_per_sender=5000, period=0.5,
                              fanin=3, duration=2.0)
        net.run(4.0)
        assert gen.bursts == 4
        assert len(gen.flows_started) == 4 * 3
        assert len(sink.completed_flows()) == 12
        # Every flow within a burst starts at the same instant.
        starts = sorted({r.start_time for r in gen.flows_started})
        assert len(starts) == 4

    def test_validation(self):
        net, hosts = flooded_network()
        with pytest.raises(TopologyError):
            IncastGenerator(net.sim, [hosts[0]], hosts[0])
        with pytest.raises(TopologyError):
            IncastGenerator(net.sim, hosts[:2], hosts[2], period=0.0)


class TestDiurnal:
    def test_rate_fraction_curve(self):
        net, hosts = flooded_network()
        gen = DiurnalFlowGenerator(
            net.sim, hosts, 50.0, fixed_sizes(1000),
            period=2.0, trough=0.25, duration=0.1,
        )
        assert gen.rate_fraction(0.0) == pytest.approx(0.25)
        assert gen.rate_fraction(1.0) == pytest.approx(1.0)
        assert gen.rate_fraction(2.0) == pytest.approx(0.25)
        assert gen.rate_fraction(0.5) == pytest.approx((0.25 + 1) / 2)

    def test_thinning_follows_the_day_curve(self):
        net, hosts = flooded_network(seed=6)
        gen = DiurnalFlowGenerator(
            net.sim, hosts, 80.0, fixed_sizes(1000),
            period=2.0, trough=0.1, duration=2.0,
        )
        net.run(3.0)
        assert gen.accepted > 0 and gen.thinned > 0
        starts = [r.start_time for r in gen.flows_started]
        early = sum(1 for t in starts if t <= 0.4)         # near trough
        peak = sum(1 for t in starts if 0.8 <= t <= 1.2)   # near peak
        assert peak > 2 * max(early, 1)

    def test_validation(self):
        net, hosts = flooded_network()
        with pytest.raises(TopologyError):
            DiurnalFlowGenerator(net.sim, hosts, 10.0, fixed_sizes(1000),
                                 period=0.0)
        with pytest.raises(TopologyError):
            DiurnalFlowGenerator(net.sim, hosts, 10.0, fixed_sizes(1000),
                                 trough=1.5)


class TestTenantMatrix:
    TENANTS = [
        {"name": "a", "users": 600_000, "intra_weight": 0.9},
        {"name": "b", "users": 300_000, "intra_weight": 0.5},
        {"name": "c", "users": 100_000, "intra_weight": 0.9},
    ]

    def test_partition_proportional_to_users(self):
        matrix = TenantMatrix(random.Random(0), list(range(12)),
                              self.TENANTS)
        counts = [len(pool) for pool in matrix.hosts_by_tenant]
        assert sum(counts) == 12
        assert counts[0] > counts[1] > counts[2] >= 2

    def test_pick_returns_distinct_pair(self):
        matrix = TenantMatrix(random.Random(1), list(range(12)),
                              self.TENANTS)
        for _ in range(200):
            src, dst = matrix.pick()
            assert src is not dst

    def test_aggregate_rate_scales_with_modelled_users(self):
        matrix = TenantMatrix(random.Random(0), list(range(12)),
                              self.TENANTS)
        assert matrix.total_users == 1_000_000
        assert matrix.aggregate_rate(2e-5) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(TopologyError):
            TenantMatrix(random.Random(0), list(range(12)), [])
        with pytest.raises(TopologyError):
            TenantMatrix(random.Random(0), [1, 2], self.TENANTS)
        with pytest.raises(TopologyError):
            TenantMatrix(random.Random(0), list(range(12)),
                         [{"name": "x", "users": 0}])


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------

class TestSpec:
    def test_library_round_trips(self):
        for spec in library().values():
            doc = spec.to_dict()
            assert WorkloadSpec.from_dict(doc).to_dict() == doc

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        spec = load_spec(str(path))
        assert spec.name == "tiny"
        assert spec.traffic[0]["kind"] == "flows"

    def test_unsupported_version_rejected(self):
        doc = tiny_spec().to_dict()
        doc["version"] = 99
        with pytest.raises(TopologyError):
            WorkloadSpec.from_dict(doc)

    def test_traffic_required(self):
        with pytest.raises(TopologyError):
            WorkloadSpec("empty", topology={"family": "single"},
                         traffic=[])

    def test_horizon_covers_traffic_and_faults(self):
        spec = tiny_spec(faults=[{
            "kind": "channel_flap", "switch": "s1", "at": 2.0,
            "down_for": 0.3, "period": 1.0, "count": 3,
        }])
        # Last cycle goes down at 2.0 + 2*1.0 and recovers 0.3s later.
        assert spec.horizon() == pytest.approx(
            max(0.2 + 1.2, 2.0 + 2 * 1.0 + 0.3) + 1.0)

    def test_horizon_single_cycle_covers_recovery(self):
        # Regression: with one cycle the old ``at + count*period`` bound
        # (3.0) undershot the actual recovery at ``at + down_for``
        # (6.0), so the run could end with the fault still live.
        spec = tiny_spec(faults=[{
            "kind": "channel_flap", "switch": "s1", "at": 1.0,
            "down_for": 5.0, "period": 2.0, "count": 1,
        }])
        assert spec.horizon() == pytest.approx(1.0 + 5.0 + 1.0)


# ----------------------------------------------------------------------
# Runner + suite
# ----------------------------------------------------------------------

class TestRunner:
    def test_run_is_seeded_bit_identical(self):
        first = run_workload(tiny_spec())
        second = run_workload(
            WorkloadSpec.from_dict(tiny_spec().to_dict()))
        assert first.digest == second.digest
        report = diff_runs(first.artifact, second.artifact)
        assert report.ok

    def test_summary_and_artifact_contents(self):
        result = run_workload(tiny_spec())
        s = result.summary
        assert s["flows_completed"] > 0
        assert s["flows_started"] >= s["flows_completed"]
        assert s["fct_p99"] is not None and s["fct_p99"] >= 0
        assert s["flow_table_peak"] > 0
        assert result.artifact.meta["summary"] == s
        assert result.artifact.meta["workload"]["name"] == "tiny"
        assert any(sid.startswith("workload_flow_entries")
                   for sid in result.artifact.series)

    def test_faults_are_armed(self):
        spec = tiny_spec(name="tiny-fault", faults=[{
            "kind": "channel_flap", "switch": "s1", "at": 0.5,
            "down_for": 0.2, "period": 0.6, "count": 1,
        }])
        result = run_workload(spec)
        assert result.summary["faults_fired"] >= 2  # down + up

    def test_suite_digest_independent_of_jobs(self, tmp_path):
        specs = [tiny_spec(), tiny_spec(name="tiny-b", seed=4)]
        serial = run_suite(specs, jobs=1,
                           out_dir=str(tmp_path / "serial"))
        parallel = run_suite(specs, jobs=2,
                             out_dir=str(tmp_path / "parallel"))
        assert suite_digest(serial) == suite_digest(parallel)
        assert [r["digest"] for r in serial] == \
            [r["digest"] for r in parallel]
        for name in ("tiny", "tiny-b"):
            a = load_artifact(str(tmp_path / "serial" / f"{name}.json"))
            b = load_artifact(str(tmp_path / "parallel" / f"{name}.json"))
            assert diff_runs(a, b).ok

    def test_to_check_scenario_runs_clean(self):
        from repro.check import run_scenario

        scenario = to_check_scenario(tiny_spec())
        assert scenario.workload[0]["kind"] == "flows"
        assert scenario.horizon() >= 1.4 + 1.0
        result = run_scenario(scenario)
        assert result.ok
        assert result.observables["hosts"]["h1"]["tx"] > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestWorkloadCLI:
    def test_list(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in library():
            assert name in out

    def test_run_spec_file_with_artifact(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        artifact_path = tmp_path / "run.json"
        code = main(["workload", "run", "--spec", str(spec_path),
                     "--out", str(artifact_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny:" in out and "digest" in out
        artifact = load_artifact(str(artifact_path))
        assert artifact.meta["workload"]["name"] == "tiny"

    def test_run_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "--name", "nope"])

    def test_run_needs_name_or_spec(self):
        with pytest.raises(SystemExit):
            main(["workload", "run"])
